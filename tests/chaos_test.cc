// Chaos suite: every protocol backend runs against every fault kind at
// deterministic seed-driven injection points. The contract under test is
// the fault-tolerance invariant from DESIGN.md: a faulted run ends in a
// *typed* transport error or a *correct* result within the watchdog
// deadline — never a hang, never silently wrong outputs. Delay faults
// (and clean runs) must always succeed.
//
// Stack per run: the injecting (client) endpoint is wrapped in
// FaultInjectingChannel beneath FramedChannel, so one fault mangles one
// whole CRC frame; the server endpoint runs the matching FramedChannel.
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "core/pipeline.h"
#include "crypto/paillier.h"
#include "data/warfarin_gen.h"
#include "gc/protocol.h"
#include "ml/linear_model.h"
#include "net/channel.h"
#include "net/error.h"
#include "net/fault.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ot/iknp.h"
#include "serve/client.h"
#include "serve/model.h"
#include "serve/server.h"
#include "sharing/gmw.h"
#include "smc/secure_linear.h"
#include "smc/secure_nb.h"
#include "util/serial.h"
#include "util/bitvec.h"
#include "util/check.h"
#include "util/random.h"

namespace pafs {
namespace {

// ThreadSanitizer slows the round-heavy backends an order of magnitude
// (GMW under a delay fault pays per-message slowdown times hundreds of
// rounds), so the hang watchdog needs far more headroom there. The recv
// deadline stays tight: it is what a dropped message surfaces as, and
// every drop cell waits it out in full.
#if defined(__SANITIZE_THREAD__)
#define PAFS_CHAOS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAFS_CHAOS_TSAN 1
#endif
#endif
#ifndef PAFS_CHAOS_TSAN
#define PAFS_CHAOS_TSAN 0
#endif

// Any sanitizer (PAFS_SLOW_SANITIZER comes from CMake when PAFS_SANITIZE
// is set) slows the serving storm enough that retry deadlines sized for a
// plain build expire on legitimate load; scale those budgets generically.
#if PAFS_CHAOS_TSAN || defined(PAFS_SLOW_SANITIZER)
#define PAFS_CHAOS_SLOW 1
#else
#define PAFS_CHAOS_SLOW 0
#endif

// Generous enough that legitimate compute (base OTs under ASan) never
// trips it; a fault that drops a message surfaces as this deadline.
constexpr double kRecvTimeout = PAFS_CHAOS_TSAN ? 4.0 : 2.0;
constexpr auto kWatchdogDeadline =
    std::chrono::seconds(PAFS_CHAOS_TSAN ? 240 : 30);

struct PartyOutcome {
  bool ok = false;
  bool typed_error = false;
  std::string error;
};

// One (kind, seed, first_op) cell of the chaos matrix. Two injection
// points per kind: the opening send (faults the OT/key setup) and a few
// ops in (faults the protocol proper).
struct ChaosCase {
  FaultKind kind;
  uint64_t seed;
  uint64_t first_op;
};

std::vector<ChaosCase> ChaosMatrix() {
  std::vector<ChaosCase> cases;
  for (FaultKind kind : {FaultKind::kDrop, FaultKind::kTruncate,
                         FaultKind::kCorrupt, FaultKind::kDelay,
                         FaultKind::kDisconnect}) {
    cases.push_back({kind, 1, 0});
    cases.push_back({kind, 7, 4});
  }
  return cases;
}

FaultPlan MakePlan(const ChaosCase& c) {
  FaultPlan plan;
  plan.kind = c.kind;
  plan.seed = c.seed;
  plan.first_op = c.first_op;
  plan.probability = 1.0;
  plan.max_faults = 1;
  plan.delay_seconds = 0.01;
  return plan;
}

std::string CaseLabel(const ChaosCase& c) {
  return std::string(FaultKindName(c.kind)) + " seed=" +
         std::to_string(c.seed) + " first_op=" + std::to_string(c.first_op);
}

// Runs both parties over the faulted stack under a watchdog. Returns
// false iff the watchdog tripped — i.e. the run *hung* and had to be
// killed by closing the channel pair. Any non-transport exception
// escapes and fails the test loudly.
bool RunChaos(const FaultPlan& plan,
              const std::function<void(Channel&)>& server_body,
              const std::function<void(Channel&)>& client_body,
              PartyOutcome* server_out, PartyOutcome* client_out) {
  MemChannelPair pair;
  FaultInjector injector(plan);
  FramedChannel server_ch(pair.endpoint(0));
  FaultInjectingChannel faulty(pair.endpoint(1), injector);
  FramedChannel client_ch(faulty);
  server_ch.set_recv_timeout_seconds(kRecvTimeout);
  client_ch.set_recv_timeout_seconds(kRecvTimeout);

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool tripped = false;
  std::thread watchdog([&] {
    std::unique_lock<std::mutex> lock(m);
    if (!cv.wait_for(lock, kWatchdogDeadline, [&] { return done; })) {
      tripped = true;
      pair.Close();  // Unwedge both parties; they fail typed, not hang.
    }
  });

  auto run = [](Channel& ch, const std::function<void(Channel&)>& body,
                PartyOutcome* out) {
    try {
      body(ch);
      out->ok = true;
    } catch (const TransportError& e) {
      out->typed_error = true;
      out->error = e.what();
      ch.Close();  // A dead party must not leave its peer blocked.
    }
  };
  std::thread server(run, std::ref(server_ch), std::cref(server_body),
                     server_out);
  run(client_ch, client_body, client_out);
  server.join();
  {
    std::lock_guard<std::mutex> lock(m);
    done = true;
  }
  cv.notify_all();
  watchdog.join();
  return !tripped;
}

// The invariant every cell must satisfy; delay (and none) must succeed.
void CheckOutcome(const ChaosCase& c, const PartyOutcome& server,
                  const PartyOutcome& client) {
  EXPECT_TRUE(server.ok || server.typed_error) << "server fate untyped";
  EXPECT_TRUE(client.ok || client.typed_error) << "client fate untyped";
  if (c.kind == FaultKind::kDelay) {
    EXPECT_TRUE(server.ok) << server.error;
    EXPECT_TRUE(client.ok) << client.error;
  }
}

Circuit BuildAdder(uint32_t width) {
  CircuitBuilder b(width, width);
  b.AddOutputWord(b.AddW(b.GarblerWord(0, width), b.EvaluatorWord(0, width)));
  return b.Build();
}

TEST(ChaosTest, GarbledCircuitSurvivesEveryFaultKind) {
  Circuit circuit = BuildAdder(8);
  BitVec gbits = BitVec::FromU64(57, 8);
  BitVec ebits = BitVec::FromU64(199, 8);
  BitVec expected = circuit.Evaluate(gbits, ebits);
  for (const ChaosCase& c : ChaosMatrix()) {
    SCOPED_TRACE(CaseLabel(c));
    PartyOutcome server, client;
    BitVec server_got(0), client_got(0);
    bool no_hang = RunChaos(
        MakePlan(c),
        [&](Channel& ch) {
          OtExtSender ot;
          Rng rng(c.seed * 11 + 1);
          server_got = GcRunGarbler(ch, circuit, gbits, ot, rng);
        },
        [&](Channel& ch) {
          OtExtReceiver ot;
          Rng rng(c.seed * 13 + 2);
          client_got = GcRunEvaluator(ch, circuit, ebits, ot, rng);
        },
        &server, &client);
    ASSERT_TRUE(no_hang) << "run hung until the watchdog killed it";
    CheckOutcome(c, server, client);
    if (server.ok) {
      EXPECT_TRUE(server_got == expected);
    }
    if (client.ok) {
      EXPECT_TRUE(client_got == expected);
    }
  }
}

TEST(ChaosTest, IknpOtSurvivesEveryFaultKind) {
  constexpr size_t kBatch = 64;
  std::vector<std::array<Block, 2>> messages(kBatch);
  for (size_t j = 0; j < kBatch; ++j) {
    messages[j] = {Block(j, 0xAA), Block(j, 0xBB)};
  }
  BitVec choices(kBatch);
  for (size_t j = 0; j < kBatch; ++j) choices.Set(j, j % 3 == 0);
  for (const ChaosCase& c : ChaosMatrix()) {
    SCOPED_TRACE(CaseLabel(c));
    PartyOutcome server, client;
    std::vector<Block> got;
    bool no_hang = RunChaos(
        MakePlan(c),
        [&](Channel& ch) {
          OtExtSender ot;
          Rng rng(c.seed * 17 + 3);
          ot.Setup(ch, rng);
          ot.Send(ch, messages);
        },
        [&](Channel& ch) {
          OtExtReceiver ot;
          Rng rng(c.seed * 19 + 4);
          ot.Setup(ch, rng);
          got = ot.Recv(ch, choices);
        },
        &server, &client);
    ASSERT_TRUE(no_hang) << "run hung until the watchdog killed it";
    CheckOutcome(c, server, client);
    if (client.ok) {
      ASSERT_EQ(got.size(), kBatch);
      for (size_t j = 0; j < kBatch; ++j) {
        EXPECT_TRUE(got[j] == messages[j][choices.Get(j)]) << "index " << j;
      }
    }
  }
}

TEST(ChaosTest, GmwSurvivesEveryFaultKind) {
  Circuit circuit = BuildAdder(6);
  BitVec gbits = BitVec::FromU64(21, 6);
  BitVec ebits = BitVec::FromU64(40, 6);
  BitVec expected = circuit.Evaluate(gbits, ebits);
  for (const ChaosCase& c : ChaosMatrix()) {
    SCOPED_TRACE(CaseLabel(c));
    PartyOutcome server, client;
    BitVec server_got(0), client_got(0);
    bool no_hang = RunChaos(
        MakePlan(c),
        [&](Channel& ch) {
          GmwParty party(0, ch);
          Rng rng(c.seed * 23 + 5);
          party.Setup(rng);
          server_got = party.Evaluate(circuit, gbits, rng);
        },
        [&](Channel& ch) {
          GmwParty party(1, ch);
          Rng rng(c.seed * 29 + 6);
          party.Setup(rng);
          client_got = party.Evaluate(circuit, ebits, rng);
        },
        &server, &client);
    ASSERT_TRUE(no_hang) << "run hung until the watchdog killed it";
    CheckOutcome(c, server, client);
    if (server.ok) {
      EXPECT_TRUE(server_got == expected);
    }
    if (client.ok) {
      EXPECT_TRUE(client_got == expected);
    }
  }
}

TEST(ChaosTest, PaillierLinearSurvivesEveryFaultKind) {
  Rng data_rng(5);
  Dataset data = GenerateWarfarinCohort(400, data_rng);
  LinearModel model;
  model.Train(data, LinearTrainParams());
  Rng key_rng(6);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);
  SecureLinearProtocol protocol(data.features(), data.num_classes(), {});
  const std::vector<int>& row = data.row(17);
  for (const ChaosCase& c : ChaosMatrix()) {
    SCOPED_TRACE(CaseLabel(c));
    PartyOutcome server, client;
    SmcRunStats server_stats, client_stats;
    bool no_hang = RunChaos(
        MakePlan(c),
        [&](Channel& ch) {
          OtExtSender ot;
          Rng rng(c.seed * 31 + 7);
          server_stats = protocol.RunServer(ch, model, {}, ot, rng);
        },
        [&](Channel& ch) {
          OtExtReceiver ot;
          Rng rng(c.seed * 37 + 8);
          client_stats = protocol.RunClient(ch, keys, row, ot, rng);
        },
        &server, &client);
    ASSERT_TRUE(no_hang) << "run hung until the watchdog killed it";
    CheckOutcome(c, server, client);
    if (server.ok && client.ok) {
      // Both finished: they must agree on a valid class (fixed-point
      // near-ties make exact plaintext agreement too strict here).
      EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
      EXPECT_GE(client_stats.predicted_class, 0);
      EXPECT_LT(client_stats.predicted_class, data.num_classes());
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline-level chaos: the supervisor must absorb transient faults via
// session teardown + retry and surface a typed error once the budget of
// attempts is spent.

class PipelineChaosTest : public ::testing::Test {
 protected:
  PipelineChaosTest() : rng_(11), data_(GenerateWarfarinCohort(400, rng_)) {}

  PipelineConfig BaseConfig() const {
    PipelineConfig config;
    config.classifier = ClassifierKind::kNaiveBayes;
    config.recv_timeout_seconds = kRecvTimeout;
    config.retry_backoff_seconds = 0.001;
    return config;
  }

  Rng rng_;
  Dataset data_;
};

TEST_F(PipelineChaosTest, DropMidQueryIsRetriedTransparently) {
  PipelineConfig config = BaseConfig();
  config.fault_plan.kind = FaultKind::kDrop;
  config.fault_plan.seed = 3;
  config.fault_plan.first_op = 20;  // Deep enough to hit the query proper.
  config.fault_plan.max_faults = 1;
  SecureClassificationPipeline pipeline(data_, config);
  const std::vector<int>& row = data_.row(7);
  SmcRunStats stats = pipeline.Classify(row);
  EXPECT_EQ(stats.predicted_class, pipeline.PlaintextPredict(row));
  EXPECT_EQ(pipeline.faults_injected(), 1u);
}

TEST_F(PipelineChaosTest, DisconnectMidQueryIsRetriedTransparently) {
  PipelineConfig config = BaseConfig();
  config.fault_plan.kind = FaultKind::kDisconnect;
  config.fault_plan.seed = 9;
  config.fault_plan.first_op = 10;
  config.fault_plan.max_faults = 1;
  SecureClassificationPipeline pipeline(data_, config);
  const std::vector<int>& row = data_.row(13);
  SmcRunStats stats = pipeline.Classify(row);
  EXPECT_EQ(stats.predicted_class, pipeline.PlaintextPredict(row));
  EXPECT_EQ(pipeline.faults_injected(), 1u);
}

TEST_F(PipelineChaosTest, ExhaustedRetriesSurfaceTypedError) {
  PipelineConfig config = BaseConfig();
  config.fault_plan.kind = FaultKind::kDrop;
  config.fault_plan.seed = 4;
  config.fault_plan.max_faults = 0;  // Unlimited: every attempt dies.
  config.max_attempts = 2;
  config.recv_timeout_seconds = 0.25;  // Fail fast; every send drops anyway.
  SecureClassificationPipeline pipeline(data_, config);
  EXPECT_THROW(pipeline.Classify(data_.row(1)), ClassificationError);
  EXPECT_GE(pipeline.faults_injected(), 2u);
}

// ---------------------------------------------------------------------------
// Chaos over the real wire: the same seed-deterministic fault matrix
// stacked over a loopback TCP connection (FramedChannel over
// FaultInjectingChannel over SocketChannel), plus socket-specific faults
// the in-memory pair cannot express (hard close mid-message, accept
// backlog overflow). The invariant is unchanged: typed error or correct
// result within the watchdog deadline, never a hang.

struct TcpTestConnection {
  std::unique_ptr<SocketChannel> server;
  std::unique_ptr<SocketChannel> client;
};

TcpTestConnection MakeTcpConnection() {
  SocketListener listener =
      SocketListener::Listen(SocketAddress::Tcp("127.0.0.1", 0));
  TcpTestConnection conn;
  std::thread connector(
      [&] { conn.client = SocketConnect(listener.local_address(), 5.0); });
  conn.server = listener.Accept(5.0);
  connector.join();
  PAFS_CHECK(conn.server != nullptr);
  PAFS_CHECK(conn.client != nullptr);
  return conn;
}

// RunChaos over TCP loopback instead of a MemChannelPair.
bool RunChaosOverTcp(const FaultPlan& plan,
                     const std::function<void(Channel&)>& server_body,
                     const std::function<void(Channel&)>& client_body,
                     PartyOutcome* server_out, PartyOutcome* client_out) {
  TcpTestConnection conn = MakeTcpConnection();
  FaultInjector injector(plan);
  FramedChannel server_ch(*conn.server);
  FaultInjectingChannel faulty(*conn.client, injector);
  FramedChannel client_ch(faulty);
  server_ch.set_recv_timeout_seconds(kRecvTimeout);
  client_ch.set_recv_timeout_seconds(kRecvTimeout);

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool tripped = false;
  std::thread watchdog([&] {
    std::unique_lock<std::mutex> lock(m);
    if (!cv.wait_for(lock, kWatchdogDeadline, [&] { return done; })) {
      tripped = true;
      conn.server->Close();
      conn.client->Close();
    }
  });

  auto run = [](Channel& ch, const std::function<void(Channel&)>& body,
                PartyOutcome* out) {
    try {
      body(ch);
      out->ok = true;
    } catch (const TransportError& e) {
      out->typed_error = true;
      out->error = e.what();
      ch.Close();
    }
  };
  std::thread server(run, std::ref(server_ch), std::cref(server_body),
                     server_out);
  run(client_ch, client_body, client_out);
  server.join();
  {
    std::lock_guard<std::mutex> lock(m);
    done = true;
  }
  cv.notify_all();
  watchdog.join();
  return !tripped;
}

TEST(SocketChaosTest, GarbledCircuitSurvivesFaultMatrixOverTcp) {
  Circuit circuit = BuildAdder(8);
  BitVec gbits = BitVec::FromU64(113, 8);
  BitVec ebits = BitVec::FromU64(42, 8);
  BitVec expected = circuit.Evaluate(gbits, ebits);
  for (const ChaosCase& c : ChaosMatrix()) {
    SCOPED_TRACE(CaseLabel(c));
    PartyOutcome server, client;
    BitVec server_got(0), client_got(0);
    bool no_hang = RunChaosOverTcp(
        MakePlan(c),
        [&](Channel& ch) {
          OtExtSender ot;
          Rng rng(c.seed * 41 + 1);
          server_got = GcRunGarbler(ch, circuit, gbits, ot, rng);
        },
        [&](Channel& ch) {
          OtExtReceiver ot;
          Rng rng(c.seed * 43 + 2);
          client_got = GcRunEvaluator(ch, circuit, ebits, ot, rng);
        },
        &server, &client);
    ASSERT_TRUE(no_hang) << "run hung until the watchdog killed it";
    CheckOutcome(c, server, client);
    if (server.ok) EXPECT_TRUE(server_got == expected);
    if (client.ok) EXPECT_TRUE(client_got == expected);
  }
}

TEST(SocketChaosTest, PeerHardCloseMidMessageFailsTyped) {
  // A peer that dies mid-frame (partial header on the wire, then RST/FIN)
  // must surface as kClosed on the survivor — not a hang, not garbage.
  TcpTestConnection conn = MakeTcpConnection();
  conn.server->set_recv_timeout_seconds(kRecvTimeout);
  FramedChannel server_ch(*conn.server);
  const uint8_t partial[3] = {0x01, 0x02, 0x03};
  conn.client->Send(partial, sizeof(partial));
  conn.client->Close();
  try {
    server_ch.RecvU64();
    FAIL() << "expected a typed transport error";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kClosed) << e.what();
  }
}

TEST(SocketChaosTest, PeerHardCloseMidPayloadFailsTyped) {
  // Same, but the cut lands inside a framed payload: the header promises
  // more bytes than ever arrive.
  TcpTestConnection conn = MakeTcpConnection();
  conn.server->set_recv_timeout_seconds(kRecvTimeout);
  FramedChannel server_ch(*conn.server);
  std::thread victim([&] {
    FramedChannel client_ch(*conn.client);
    try {
      // Far past the kernel buffers, so the sender is still mid-payload
      // (blocked on POLLOUT) when the close lands. The cut is guaranteed
      // to fall inside the framed message, not between messages.
      client_ch.SendBytes(std::vector<uint8_t>(64 << 20, 0xEE));
      ADD_FAILURE() << "send of unreceivable payload completed";
    } catch (const TransportError&) {
      // Closed under our own blocked send: the expected typed unwind.
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.client->Close();
  victim.join();
  EXPECT_THROW(server_ch.RecvBytes(), TransportError);
}

TEST(SocketChaosTest, AcceptBacklogOverflowYieldsTypedOutcomes) {
  // A listener that never accepts, with a tiny backlog, swamped by
  // concurrent connects: every connect must end typed — connected (the
  // kernel queued it) or ChannelError (timeout/refused) — within its own
  // deadline. No untyped escape, no hang.
  SocketListener listener =
      SocketListener::Listen(SocketAddress::Tcp("127.0.0.1", 0),
                             /*backlog=*/1);
  constexpr int kConnects = 24;
  std::atomic<int> connected{0};
  std::atomic<int> typed_failures{0};
  std::vector<std::thread> dialers;
  std::vector<std::unique_ptr<SocketChannel>> held(kConnects);
  for (int i = 0; i < kConnects; ++i) {
    dialers.emplace_back([&, i] {
      try {
        held[i] = SocketConnect(listener.local_address(), 0.5);
        ++connected;
      } catch (const ChannelError&) {
        ++typed_failures;
      }
    });
  }
  for (auto& d : dialers) d.join();
  // Every dialer resolved one way or the other...
  EXPECT_EQ(connected + typed_failures, kConnects);
  // ...and the kernel queue admitted at least one despite zero accepts.
  EXPECT_GE(connected.load(), 1);
}

// ---------------------------------------------------------------------------
// Serving-layer chaos: the full resilience stack end to end. Faulty
// clients at 4x worker oversubscription, against a server that is killed
// and restarted mid-storm — RetryPolicy (reconnect + re-handshake + typed
// kBusy backoff) must absorb all of it with ZERO client-visible query
// failures and zero wrong answers.

TEST(ServingChaosTest, OverloadedFaultyClientsSurviveServerRestart) {
  Rng data_rng(77);
  Dataset data = GenerateWarfarinCohort(600, data_rng);
  PipelineConfig pc;
  pc.classifier = ClassifierKind::kNaiveBayes;
  pc.risk_budget = 0.08;
  SecureClassificationPipeline pipeline(data, pc);
  serve::ServingModel model = serve::ServingModel::FromPipeline(pipeline);

  serve::ServerConfig sc;
  // UDS so the restarted server reappears at the same address.
  sc.address = SocketAddress::Unix("/tmp/pafs_chaos_serve_" +
                                   std::to_string(::getpid()) + ".sock");
  sc.num_threads = 2;  // 8 clients below = 4x oversubscription.
  sc.recv_timeout_seconds = kRecvTimeout;
  sc.drain_timeout_seconds = 0.2;
  sc.max_pending_queries = 4;  // Small bound: the storm must hit sheds.
  sc.idle_timeout_seconds = 10.0;
  auto server = std::make_unique<serve::ClassificationServer>(model, sc);
  server->Start();

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 3;
  std::atomic<int> wrong{0};
  std::vector<std::string> failures(kClients);
  std::atomic<uint64_t> total_reconnects{0};
  const FaultKind kKinds[] = {FaultKind::kDrop, FaultKind::kCorrupt,
                              FaultKind::kDisconnect, FaultKind::kNone};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      try {
        serve::ClientConfig cc;
        cc.address = sc.address;
        cc.recv_timeout_seconds = kRecvTimeout;
        cc.seed = 0xFEED + t;
        // Under sustained overload the deadline is the real budget:
        // instant kBusy sheds burn attempts far faster than faults do,
        // and ticket resumption makes each reconnect nearly free, so the
        // attempt cap must stay far above what the deadline permits.
        cc.retry.max_attempts = 512;
        cc.retry.initial_backoff_seconds = 0.02;
        cc.retry.max_backoff_seconds = 0.5;
        cc.retry.deadline_seconds = PAFS_CHAOS_SLOW ? 200 : 25;
        cc.fault_plan.kind = kKinds[t % 4];
        cc.fault_plan.seed = 100 + t;
        cc.fault_plan.first_op = 15 + 3 * static_cast<uint64_t>(t);
        cc.fault_plan.max_faults = 2;
        serve::ClassificationClient client(cc);
        for (int q = 0; q < kQueriesEach; ++q) {
          const std::vector<int>& row = data.row((t * 97 + q * 31) % 600);
          if (client.Classify(row) != pipeline.PlaintextPredict(row)) {
            ++wrong;
          }
        }
        total_reconnects += client.reconnects();
        client.Close();
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  }

  // Kill the server mid-storm and resurrect it at the same address; the
  // gap turns every in-flight query into a reconnect-and-retry.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      PAFS_CHAOS_SLOW ? 4000 : 600));
  server->Stop();
  server = std::make_unique<serve::ClassificationServer>(model, sc);
  server->Start();

  for (auto& c : clients) c.join();
  // The acceptance bar: zero client-visible failures, zero wrong answers.
  for (int t = 0; t < kClients; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "client " << t << ": " << failures[t];
  }
  EXPECT_EQ(wrong.load(), 0);
  // The restart alone guarantees somebody had to reconnect.
  EXPECT_GE(total_reconnects.load(), 1u);
  server->Stop();
}

// Polls a predicate with a deadline; serving counters land shortly after
// the wire-level event they describe.
template <typename Pred>
bool WaitForStat(Pred pred) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(PAFS_CHAOS_SLOW ? 60 : 10);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(ServingChaosTest, MidQueryDisconnectsResumeViaTicketWithoutRerun) {
  // Crash-recovery under injected mid-query kills: every reconnect
  // presents the resumption ticket, no query is ever executed twice
  // (counter-exact at-most-once), and once the OT extension is warm a
  // resumed reconnect re-runs ZERO base OTs.
  PafsTelemetry::Enable();
  obs::Counter& base_setups = obs::GetCounter("ot.base.setups");
  obs::Counter& injected = obs::GetCounter("faults.injected");
  uint64_t injected_before = injected.value();

  Rng data_rng(78);
  Dataset data = GenerateWarfarinCohort(600, data_rng);
  PipelineConfig pc;
  pc.classifier = ClassifierKind::kNaiveBayes;
  pc.risk_budget = 0.08;
  SecureClassificationPipeline pipeline(data, pc);
  serve::ServingModel model = serve::ServingModel::FromPipeline(pipeline);

  serve::ServerConfig sc;
  sc.recv_timeout_seconds = kRecvTimeout;
  serve::ClassificationServer server(model, sc);
  server.Start();

  serve::ClientConfig cc;
  cc.address = server.address();
  cc.recv_timeout_seconds = kRecvTimeout;
  cc.seed = 0xDEAD;
  cc.retry.max_attempts = 16;
  cc.retry.initial_backoff_seconds = 0.01;
  cc.retry.deadline_seconds = PAFS_CHAOS_SLOW ? 120 : 20;
  // Both kills land past the handshake's few sends, so every recovery
  // happens with a ticket in hand; where exactly inside a query they land
  // is the chaos — the assertions below hold for all landing points.
  cc.fault_plan.kind = FaultKind::kDisconnect;
  cc.fault_plan.seed = 11;
  cc.fault_plan.first_op = 20;
  cc.fault_plan.max_faults = 2;
  serve::ClassificationClient client(cc);

  for (int q = 0; q < 3; ++q) {
    const std::vector<int>& row = data.row(q * 201);
    EXPECT_EQ(client.Classify(row), pipeline.PlaintextPredict(row));
  }
  EXPECT_GE(injected.value() - injected_before, 1u);
  EXPECT_GE(client.resumes(), 1u);
  ASSERT_TRUE(
      WaitForStat([&] { return server.stats().queries_served >= 3; }));
  // At-most-once: the kills forced retries, but each query id executed
  // exactly once.
  EXPECT_EQ(server.stats().queries_served, 3u);

  // Deterministic coda: with the OT extension warm, kill the connection
  // outright — the resumed reconnect must re-run zero base OTs.
  uint64_t setups_warm = base_setups.value();
  uint64_t resumes_before = client.resumes();
  client.DropConnection();
  const std::vector<int>& row = data.row(17);
  EXPECT_EQ(client.Classify(row), pipeline.PlaintextPredict(row));
  EXPECT_EQ(client.resumes(), resumes_before + 1);
  EXPECT_EQ(base_setups.value(), setups_warm);  // ZERO base-OT re-runs.

  ASSERT_TRUE(
      WaitForStat([&] { return server.stats().queries_served >= 4; }));
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, 4u);
  EXPECT_EQ(stats.resumptions, client.resumes());
  EXPECT_EQ(stats.resume_misses, 0u);  // Tickets rotate; none went stale.
  client.Close();
  server.Stop();
  PafsTelemetry::Disable();
}

TEST(ServingChaosTest, CrashInReplyWindowIsAnsweredFromReplayCache) {
  // The harshest crash point: the server committed the query and sent the
  // completion ack, but the client died before reading it. On resume the
  // client is one query behind the server; its retry of the same id must
  // be answered from the replay cache — byte-for-byte, zero re-execution.
  // A second crash mid-replay must not burn the cached transcript either.
  Rng data_rng(79);
  Dataset data = GenerateWarfarinCohort(500, data_rng);
  PipelineConfig pc;
  pc.classifier = ClassifierKind::kNaiveBayes;
  pc.risk_budget = 0.08;
  SecureClassificationPipeline pipeline(data, pc);
  serve::ServingModel model = serve::ServingModel::FromPipeline(pipeline);
  serve::ClassificationServer server(model, serve::ServerConfig{});
  server.Start();
  const std::vector<int>& row = data.row(41);

  // Session 1: full handshake, snapshot the pre-query crypto state (what a
  // crashed client restores), run query 1 completely except the final
  // completion-ack read — then die.
  auto socket = SocketConnect(server.address(), 5.0);
  socket->set_recv_timeout_seconds(kRecvTimeout * 10);
  FramedChannel framed(*socket);
  serve::SendClientHello(framed, serve::ClientHello{});
  ASSERT_EQ(framed.RecvU64(), static_cast<uint64_t>(serve::ReplyStatus::kOk));
  serve::SessionSetup setup = serve::RecvSessionSetup(framed);
  std::vector<uint8_t> ticket = serve::RecvTicketFrame(framed);
  ASSERT_EQ(ticket.size(), serve::kResumeTicketBytes);
  std::map<int, int> key_map;
  for (int f : setup.plan_features) key_map.emplace(f, 0);
  SecureNbCircuit spec(setup.features, setup.num_classes, key_map);

  OtExtReceiver ot;
  Rng rng(0xC4A5);
  std::vector<uint8_t> ot_snapshot = ot.Serialize();
  std::vector<uint8_t> rng_snapshot;
  {
    ByteWriter writer(&rng_snapshot);
    rng.Serialize(writer);
  }
  auto send_query_head = [&](FramedChannel& ch) {
    ch.SendU64(static_cast<uint64_t>(serve::RequestTag::kQuery));
    ch.SendU64(1);  // Every attempt retries "the" query.
    for (int f : setup.plan_features) {
      ch.SendU64(static_cast<uint64_t>(row[f]));
    }
    EXPECT_EQ(ch.RecvU64(), static_cast<uint64_t>(serve::ReplyStatus::kOk));
  };
  send_query_head(framed);
  SmcRunStats first = SecureNbRunClient(framed, spec, row, ot, rng,
                                        setup.scheme);
  framed.SendU64(0);  // v4 refill tail request (unpooled raw client).
  EXPECT_EQ(first.predicted_class, pipeline.PlaintextPredict(row));
  ASSERT_TRUE(
      WaitForStat([&] { return server.stats().queries_served >= 1; }));
  socket->Close();  // Crash without reading the grant or completion ack.

  auto resume = [&](std::vector<uint8_t>* fresh_ticket) {
    auto s = SocketConnect(server.address(), 5.0);
    s->set_recv_timeout_seconds(kRecvTimeout * 10);
    auto ch = std::make_unique<FramedChannel>(*s);
    serve::ClientHello hello;
    hello.ticket = *fresh_ticket;
    serve::SendClientHello(*ch, hello);
    EXPECT_EQ(ch->RecvU64(),
              static_cast<uint64_t>(serve::ReplyStatus::kResumed));
    *fresh_ticket = serve::RecvTicketFrame(*ch);
    return std::make_pair(std::move(s), std::move(ch));
  };

  // Crash 2: resume, replay the retry up to the admission ack, die again
  // mid-replay. The transcript must survive for the next attempt.
  {
    auto [s2, ch2] = resume(&ticket);
    send_query_head(*ch2);
    s2->Close();
  }

  // Final attempt: resume and drive the retry to completion from the
  // restored snapshot; the whole conversation is replayed.
  OtExtReceiver ot_retry = OtExtReceiver::Deserialize(ot_snapshot);
  ByteReader rng_reader(rng_snapshot);
  Rng rng_retry = Rng::Deserialize(rng_reader);
  auto [s3, ch3] = resume(&ticket);
  send_query_head(*ch3);
  SmcRunStats retry = SecureNbRunClient(*ch3, spec, row, ot_retry, rng_retry,
                                        setup.scheme);
  ch3->SendU64(0);  // Replayed v4 refill tail: same request, same grant.
  EXPECT_EQ(ch3->RecvU64(), 0u);
  EXPECT_EQ(ch3->RecvU64(), static_cast<uint64_t>(serve::ReplyStatus::kOk));
  EXPECT_EQ(retry.predicted_class, first.predicted_class);

  ASSERT_TRUE(WaitForStat([&] { return server.stats().replay_hits >= 1; }));
  serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, 1u);  // Executed exactly once, ever.
  EXPECT_GE(stats.replay_hits, 1u);
  EXPECT_EQ(stats.resumptions, 2u);
  EXPECT_EQ(stats.resume_misses, 0u);
  server.Stop();
}

}  // namespace
}  // namespace pafs
