// Unit tests for src/util: PRNG, bit vectors, status types.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitvec.h"
#include "util/random.h"
#include "util/status.h"

namespace pafs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextU64BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextU64Below(bound), bound);
  }
}

TEST(RngTest, NextU64BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextU64Below(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, GaussianHasUnitVariance) {
  Rng rng(5);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextCategorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, FillBytesCoversAllValues) {
  Rng rng(17);
  std::vector<uint8_t> buf(4096);
  rng.FillBytes(buf.data(), buf.size());
  std::set<uint8_t> seen(buf.begin(), buf.end());
  EXPECT_GT(seen.size(), 250u);
}

TEST(BitVecTest, SetGetRoundTrip) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130u);
  v.Set(0, true);
  v.Set(64, true);
  v.Set(129, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_FALSE(v.Get(1));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_EQ(v.CountOnes(), 3u);
}

TEST(BitVecTest, FromU64RoundTrip) {
  uint64_t value = 0xDEADBEEFCAFEF00Dull;
  BitVec v = BitVec::FromU64(value, 64);
  EXPECT_EQ(v.ToU64(), value);
  BitVec small = BitVec::FromU64(value, 12);
  EXPECT_EQ(small.ToU64(0, 12), value & 0xFFFu);
}

TEST(BitVecTest, StringRoundTrip) {
  BitVec v = BitVec::FromString("10110");
  EXPECT_EQ(v.size(), 5u);
  EXPECT_TRUE(v.Get(0));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.ToString(), "10110");
}

TEST(BitVecTest, XorAndOr) {
  BitVec a = BitVec::FromString("1100");
  BitVec b = BitVec::FromString("1010");
  EXPECT_EQ((a ^ b).ToString(), "0110");
  EXPECT_EQ((a & b).ToString(), "1000");
  EXPECT_EQ((a | b).ToString(), "1110");
}

TEST(BitVecTest, PushBackGrows) {
  BitVec v;
  for (int i = 0; i < 200; ++i) v.PushBack(i % 3 == 0);
  EXPECT_EQ(v.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(v.Get(i), i % 3 == 0);
}

TEST(BitVecTest, EqualityIgnoresNothing) {
  BitVec a = BitVec::FromString("101");
  BitVec b = BitVec::FromString("101");
  BitVec c = BitVec::FromString("1010");
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad feature index");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad feature index");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pafs
