// Unit tests for src/crypto: AES-128 against FIPS-197 vectors, SHA-256
// against FIPS 180-4 vectors, PRG determinism, garbling hash properties,
// Paillier homomorphic identities, and commitments.
#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "crypto/block.h"
#include "crypto/commit.h"
#include "crypto/key_io.h"
#include "crypto/paillier.h"
#include "crypto/paillier_pool.h"
#include "crypto/prg.h"
#include "crypto/sha256.h"
#include "util/random.h"
#include "util/serial.h"

namespace pafs {
namespace {

Block BlockFromHexBytes(const std::string& hex) {
  // Interprets the hex string as 16 bytes in order (byte 0 first).
  uint8_t bytes[16];
  for (int i = 0; i < 16; ++i) {
    bytes[i] = static_cast<uint8_t>(
        std::stoi(hex.substr(2 * i, 2), nullptr, 16));
  }
  return Block::FromBytes(bytes);
}

TEST(Aes128Test, Fips197AppendixCVector) {
  // FIPS-197 C.1: key 000102...0f, plaintext 00112233445566778899aabbccddeeff.
  Block key = BlockFromHexBytes("000102030405060708090a0b0c0d0e0f");
  Block pt = BlockFromHexBytes("00112233445566778899aabbccddeeff");
  Block expected = BlockFromHexBytes("69c4e0d86a7b0430d8cdb78070b4c55a");
  Aes128 aes(key);
  EXPECT_EQ(aes.Encrypt(pt), expected);
}

TEST(Aes128Test, Fips197AppendixBVector) {
  // FIPS-197 appendix B: key 2b7e151628aed2a6abf7158809cf4f3c.
  Block key = BlockFromHexBytes("2b7e151628aed2a6abf7158809cf4f3c");
  Block pt = BlockFromHexBytes("3243f6a8885a308d313198a2e0370734");
  Block expected = BlockFromHexBytes("3925841d02dc09fbdc118597196a0b32");
  Aes128 aes(key);
  EXPECT_EQ(aes.Encrypt(pt), expected);
}

TEST(Aes128Test, DifferentKeysDifferentCiphertexts) {
  Block pt(123, 456);
  Block c1 = Aes128(Block(1, 0)).Encrypt(pt);
  Block c2 = Aes128(Block(2, 0)).Encrypt(pt);
  EXPECT_NE(c1, c2);
}

TEST(BlockTest, XorAndLsb) {
  Block a(0b1010, 7);
  Block b(0b0110, 5);
  EXPECT_EQ((a ^ b).lo, 0b1100u);
  EXPECT_EQ((a ^ b).hi, 2u);
  EXPECT_FALSE(a.GetLsb());
  EXPECT_TRUE(a.WithLsb(true).GetLsb());
  EXPECT_EQ(a.WithLsb(true).lo, 0b1011u);
}

TEST(BlockTest, GfDoubleShifts) {
  Block a(1, 0);
  EXPECT_EQ(a.GfDouble().lo, 2u);
  // Overflow of the top bit folds back via the GCM polynomial 0x87.
  Block top(0, 0x8000000000000000ull);
  Block doubled = top.GfDouble();
  EXPECT_EQ(doubled.lo, 0x87u);
  EXPECT_EQ(doubled.hi, 0u);
}

TEST(BlockTest, BytesRoundTrip) {
  Block a(0x0123456789ABCDEFull, 0xFEDCBA9876543210ull);
  uint8_t bytes[16];
  a.ToBytes(bytes);
  EXPECT_EQ(Block::FromBytes(bytes), a);
}

TEST(Sha256Test, Fips180EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string())),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Fips180Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, Fips180TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg(1000, 'x');
  Sha256 h;
  h.Update(msg.substr(0, 17));
  h.Update(msg.substr(17, 500));
  h.Update(msg.substr(517));
  EXPECT_EQ(h.Finalize(), Sha256::Hash(msg));
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long-message vector.
  std::string msg(1000000, 'a');
  EXPECT_EQ(DigestToHex(Sha256::Hash(msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(PrgTest, DeterministicForSeed) {
  Prg a(Block(9, 9)), b(Block(9, 9));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.NextBlock(), b.NextBlock());
}

TEST(PrgTest, DifferentSeedsDiverge) {
  Prg a(Block(1, 0)), b(Block(2, 0));
  EXPECT_NE(a.NextBlock(), b.NextBlock());
}

TEST(PrgTest, BytesAreBalanced) {
  Prg prg(Block(77, 0));
  std::vector<uint8_t> bytes = prg.Bytes(8192);
  int ones = 0;
  for (uint8_t b : bytes) ones += __builtin_popcount(b);
  double fraction = ones / (8192.0 * 8);
  EXPECT_NEAR(fraction, 0.5, 0.02);
}

TEST(PrgTest, BitStreamMatchesBlocks) {
  Prg prg(Block(5, 5));
  int ones = 0;
  for (int i = 0; i < 4096; ++i) ones += prg.NextBit();
  EXPECT_NEAR(ones / 4096.0, 0.5, 0.05);
}

TEST(HashBlockTest, TweakSeparatesOutputs) {
  Block x(42, 42);
  EXPECT_NE(HashBlock(x, 0), HashBlock(x, 1));
  EXPECT_EQ(HashBlock(x, 7), HashBlock(x, 7));
}

TEST(HashBlockTest, InputSeparation) {
  EXPECT_NE(HashBlock(Block(1, 0), 0), HashBlock(Block(2, 0), 0));
  EXPECT_NE(HashBlocks(Block(1, 0), Block(2, 0), 0),
            HashBlocks(Block(2, 0), Block(1, 0), 0));
}

class PaillierTest : public ::testing::Test {
 protected:
  PaillierTest() : rng_(2024), keys_(GeneratePaillierKey(rng_, 256)) {}

  Rng rng_;
  PaillierKeyPair keys_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int64_t m : {0ll, 1ll, 42ll, 1000000007ll}) {
    BigInt c = keys_.public_key.Encrypt(BigInt(m), rng_);
    EXPECT_EQ(keys_.private_key.Decrypt(c).ToI64(), m);
  }
}

TEST_F(PaillierTest, NegativeMessages) {
  for (int64_t m : {-1ll, -9999ll, -123456789ll}) {
    BigInt c = keys_.public_key.Encrypt(BigInt(m), rng_);
    EXPECT_EQ(keys_.private_key.Decrypt(c).ToI64(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  BigInt c1 = keys_.public_key.Encrypt(BigInt(5), rng_);
  BigInt c2 = keys_.public_key.Encrypt(BigInt(5), rng_);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(keys_.private_key.Decrypt(c1), keys_.private_key.Decrypt(c2));
}

TEST_F(PaillierTest, CrtDecryptMatchesFullWidthReference) {
  // Decrypt runs the CRT-split fast path; DecryptFullWidth is the
  // textbook L(c^lambda mod n^2) * mu mod n reference. Differential-test
  // them across positive, negative, zero, and homomorphically-derived
  // ciphertexts — any divergence means the CRT recombination is wrong.
  std::vector<BigInt> ciphertexts;
  for (int64_t m : {0ll, 1ll, -1ll, 424242ll, -987654321ll}) {
    ciphertexts.push_back(keys_.public_key.Encrypt(BigInt(m), rng_));
  }
  ciphertexts.push_back(
      keys_.public_key.Add(ciphertexts[3], ciphertexts[4]));
  ciphertexts.push_back(keys_.public_key.MulPlain(ciphertexts[3], BigInt(17)));
  for (int trial = 0; trial < 16; ++trial) {
    BigInt m = BigInt::RandomBits(rng_, 60);
    if (trial % 2 == 1) m = BigInt(0) - m;
    ciphertexts.push_back(keys_.public_key.Encrypt(m, rng_));
  }
  for (size_t i = 0; i < ciphertexts.size(); ++i) {
    EXPECT_EQ(keys_.private_key.Decrypt(ciphertexts[i]),
              keys_.private_key.DecryptFullWidth(ciphertexts[i]))
        << "ciphertext " << i;
  }
}

TEST_F(PaillierTest, HomomorphicAddition) {
  BigInt c1 = keys_.public_key.Encrypt(BigInt(1234), rng_);
  BigInt c2 = keys_.public_key.Encrypt(BigInt(-234), rng_);
  BigInt sum = keys_.public_key.Add(c1, c2);
  EXPECT_EQ(keys_.private_key.Decrypt(sum).ToI64(), 1000);
}

TEST_F(PaillierTest, AddPlainConstant) {
  BigInt c = keys_.public_key.Encrypt(BigInt(10), rng_);
  BigInt shifted = keys_.public_key.AddPlain(c, BigInt(-25));
  EXPECT_EQ(keys_.private_key.Decrypt(shifted).ToI64(), -15);
}

TEST_F(PaillierTest, ScalarMultiplication) {
  BigInt c = keys_.public_key.Encrypt(BigInt(-7), rng_);
  BigInt scaled = keys_.public_key.MulPlain(c, BigInt(13));
  EXPECT_EQ(keys_.private_key.Decrypt(scaled).ToI64(), -91);
}

TEST_F(PaillierTest, NegativeScalarMultiplication) {
  // Negative scalars take the slow full-exponent path but must be correct.
  BigInt c = keys_.public_key.Encrypt(BigInt(9), rng_);
  BigInt scaled = keys_.public_key.MulPlain(c, BigInt(-4));
  EXPECT_EQ(keys_.private_key.Decrypt(scaled).ToI64(), -36);
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  BigInt c = keys_.public_key.Encrypt(BigInt(321), rng_);
  BigInt r = keys_.public_key.Rerandomize(c, rng_);
  EXPECT_NE(c, r);
  EXPECT_EQ(keys_.private_key.Decrypt(r).ToI64(), 321);
}

TEST_F(PaillierTest, DotProductProperty) {
  // The secure linear classifier's core identity:
  // Dec(prod_i Enc(x_i)^{w_i}) = sum_i w_i x_i.
  std::vector<int64_t> x = {3, -1, 4, 1, -5};
  std::vector<int64_t> w = {2, 7, -1, 8, 2};
  BigInt acc = keys_.public_key.Encrypt(BigInt(0), rng_);
  int64_t expected = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    BigInt c = keys_.public_key.Encrypt(BigInt(x[i]), rng_);
    acc = keys_.public_key.Add(acc, keys_.public_key.MulPlain(c, BigInt(w[i])));
    expected += w[i] * x[i];
  }
  EXPECT_EQ(keys_.private_key.Decrypt(acc).ToI64(), expected);
}

TEST(PaillierKeyGenTest, LargerKeysWork) {
  Rng rng(31337);
  PaillierKeyPair keys = GeneratePaillierKey(rng, 512);
  BigInt c = keys.public_key.Encrypt(BigInt::FromDecimal("98765432109876543210"),
                                     rng);
  EXPECT_EQ(keys.private_key.Decrypt(c).ToDecimal(), "98765432109876543210");
}

TEST(KeyIoTest, PrivateKeyRoundTrip) {
  Rng rng(91);
  PaillierKeyPair keys = GeneratePaillierKey(rng, 256);
  std::string path = "/tmp/pafs_key_test.key";
  ASSERT_TRUE(SavePaillierKey(keys, path).ok());
  StatusOr<PaillierKeyPair> loaded = LoadPaillierKey(path);
  ASSERT_TRUE(loaded.ok());
  // The reloaded key decrypts fresh ciphertexts from the original public key.
  BigInt c = keys.public_key.Encrypt(BigInt(-777), rng);
  EXPECT_EQ(loaded.value().private_key.Decrypt(c).ToI64(), -777);
  std::remove(path.c_str());
}

TEST(KeyIoTest, PublicKeyRoundTrip) {
  Rng rng(92);
  PaillierKeyPair keys = GeneratePaillierKey(rng, 256);
  std::string path = "/tmp/pafs_pub_test.key";
  ASSERT_TRUE(SavePaillierPublicKey(keys.public_key, path).ok());
  StatusOr<PaillierPublicKey> loaded = LoadPaillierPublicKey(path);
  ASSERT_TRUE(loaded.ok());
  BigInt c = loaded.value().Encrypt(BigInt(123), rng);
  EXPECT_EQ(keys.private_key.Decrypt(c).ToI64(), 123);
  std::remove(path.c_str());
}

TEST(KeyIoTest, RejectsCorruptFactors) {
  std::string path = "/tmp/pafs_badkey_test.key";
  {
    FILE* f = fopen(path.c_str(), "w");
    // 15 is not prime.
    fputs("pafs_paillier_private v1\np f\nq 11\n", f);
    fclose(f);
  }
  StatusOr<PaillierKeyPair> loaded = LoadPaillierKey(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(KeyIoTest, RejectsWrongMagic) {
  std::string path = "/tmp/pafs_magic_test.key";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("something_else v1\nn ff\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadPaillierKey(path).ok());
  EXPECT_FALSE(LoadPaillierPublicKey(path).ok());
  std::remove(path.c_str());
}

TEST(CommitTest, OpensCorrectly) {
  Rng rng(8);
  std::vector<uint8_t> value = {1, 2, 3, 4};
  CommitmentOpening opening;
  Commitment c = Commit(value, rng, &opening);
  EXPECT_TRUE(VerifyCommitment(c, opening));
}

TEST(CommitTest, RejectsTamperedValue) {
  Rng rng(8);
  std::vector<uint8_t> value = {1, 2, 3, 4};
  CommitmentOpening opening;
  Commitment c = Commit(value, rng, &opening);
  opening.value[0] ^= 1;
  EXPECT_FALSE(VerifyCommitment(c, opening));
}

TEST(CommitTest, HidingAcrossRandomness) {
  Rng rng(8);
  std::vector<uint8_t> value = {9, 9};
  CommitmentOpening o1, o2;
  Commitment c1 = Commit(value, rng, &o1);
  Commitment c2 = Commit(value, rng, &o2);
  EXPECT_NE(DigestToHex(c1.digest), DigestToHex(c2.digest));
}

class PaillierPoolTest : public ::testing::Test {
 protected:
  PaillierPoolTest() : rng_(404), keys_(GeneratePaillierKey(rng_, 256)) {}

  Rng rng_;
  PaillierKeyPair keys_;
};

TEST_F(PaillierPoolTest, PooledEncryptionBitIdenticalToSerialLoop) {
  // The determinism contract end to end: a pool refilled from rng position
  // P, drained FIFO by EncryptBatch, must produce the exact ciphertexts a
  // serial Encrypt loop produces from the same position — that is what
  // lets a serving client replay retried queries byte for byte.
  std::vector<BigInt> ms;
  for (int i = 0; i < 12; ++i) ms.emplace_back(i % 2);

  for (size_t prefill : {size_t{0}, size_t{5}, size_t{12}}) {
    Rng pooled_rng(9090);
    PaillierPadPool pool(keys_.public_key, ms.size());
    EXPECT_EQ(pool.Refill(pooled_rng, prefill), prefill);
    std::vector<BigInt> pooled =
        EncryptBatch(keys_.public_key, ms, pooled_rng, &pool);

    Rng serial_rng(9090);
    for (size_t i = 0; i < ms.size(); ++i) {
      BigInt expected = keys_.public_key.Encrypt(ms[i], serial_rng);
      EXPECT_EQ(pooled[i], expected) << "prefill=" << prefill << " slot " << i;
    }
  }
}

TEST_F(PaillierPoolTest, PooledOpsDecryptCorrectly) {
  PaillierPadPool pool(keys_.public_key, 8);
  pool.Refill(rng_, 8);
  BigInt pad;
  ASSERT_TRUE(pool.TryTake(&pad));
  BigInt ct = keys_.public_key.EncryptWithPad(BigInt(1234), pad);
  EXPECT_EQ(keys_.private_key.Decrypt(ct).ToI64(), 1234);

  ASSERT_TRUE(pool.TryTake(&pad));
  BigInt rerand = keys_.public_key.RerandomizeWithPad(ct, pad);
  EXPECT_NE(rerand, ct);
  EXPECT_EQ(keys_.private_key.Decrypt(rerand).ToI64(), 1234);

  PaillierPadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.refilled, 8u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(pool.depth(), 6u);
  EXPECT_EQ(pool.Deficit(), 2u);
}

TEST_F(PaillierPoolTest, DryPoolMissesAndBatchFallsBack) {
  PaillierPadPool pool(keys_.public_key, 4);
  BigInt pad;
  EXPECT_FALSE(pool.TryTake(&pad));
  EXPECT_EQ(pool.stats().misses, 1u);
  // EncryptBatch over a dry pool must still produce valid ciphertexts.
  std::vector<BigInt> ms{BigInt(0), BigInt(1), BigInt(7)};
  std::vector<BigInt> cts = EncryptBatch(keys_.public_key, ms, rng_, &pool);
  for (size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(keys_.private_key.Decrypt(cts[i]), ms[i]);
  }
}

TEST_F(PaillierPoolTest, SerializeRestoreKeepsPadsAndOrder) {
  PaillierPadPool pool(keys_.public_key, 6);
  pool.Refill(rng_, 6);
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  pool.Serialize(writer);

  PaillierPadPool restored(keys_.public_key, 6);
  ByteReader reader(bytes);
  restored.Restore(reader);
  EXPECT_EQ(restored.depth(), 6u);
  // FIFO order must survive the round trip — it is the rng-stream order
  // the determinism contract depends on.
  for (int i = 0; i < 6; ++i) {
    BigInt a, b;
    ASSERT_TRUE(pool.TryTake(&a));
    ASSERT_TRUE(restored.TryTake(&b));
    EXPECT_EQ(a, b);
  }
}

TEST_F(PaillierPoolTest, RefillRespectsTargetAndStopFlag) {
  PaillierPadPool pool(keys_.public_key, 3);
  EXPECT_EQ(pool.Refill(rng_, 10), 3u);  // Never grows past target.
  EXPECT_EQ(pool.depth(), 3u);
  pool.Clear();
  EXPECT_EQ(pool.depth(), 0u);
  std::atomic<bool> stop{true};
  EXPECT_EQ(pool.Refill(rng_, 10, &stop), 0u);  // Stop beats the batch.
}

TEST_F(PaillierPoolTest, RestoreClampsToSmallerTarget) {
  // A snapshot taken under a larger --pool-depth restored after a restart
  // with a smaller depth must not leave the pool permanently over target.
  PaillierPadPool pool(keys_.public_key, 6);
  pool.Refill(rng_, 6);
  std::vector<uint8_t> bytes;
  ByteWriter writer(&bytes);
  pool.Serialize(writer);

  PaillierPadPool shrunk(keys_.public_key, 2);
  ByteReader reader(bytes);
  shrunk.Restore(reader);
  EXPECT_EQ(shrunk.depth(), 2u);
  EXPECT_EQ(shrunk.Deficit(), 0u);
  // The kept pads are the oldest two, in FIFO order.
  for (int i = 0; i < 2; ++i) {
    BigInt a, b;
    ASSERT_TRUE(pool.TryTake(&a));
    ASSERT_TRUE(shrunk.TryTake(&b));
    EXPECT_EQ(a, b);
  }
  BigInt extra;
  EXPECT_FALSE(shrunk.TryTake(&extra));
}

TEST_F(PaillierPoolTest, ConcurrentRefillersNeverOvershootTarget) {
  // Two refillers racing on one pool: the unlocked modexp means both can
  // pass the draw-time bound check, so the push must recheck under the
  // lock and discard rather than grow past target.
  PaillierPadPool pool(keys_.public_key, 4);
  Rng rng_a(111), rng_b(222);
  size_t added_a = 0, added_b = 0;
  std::thread t([&] { added_a = pool.Refill(rng_a, 4); });
  added_b = pool.Refill(rng_b, 4);
  t.join();
  EXPECT_EQ(pool.depth(), 4u);
  EXPECT_EQ(added_a + added_b, 4u);
  EXPECT_EQ(pool.stats().refilled, 4u);
}

}  // namespace
}  // namespace pafs
