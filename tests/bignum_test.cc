// Unit and property tests for src/bignum: BigInt arithmetic, Montgomery
// modular exponentiation, and primality.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "bignum/modmath.h"
#include "bignum/prime.h"
#include "util/random.h"

namespace pafs {
namespace {

TEST(BigIntTest, SmallConstructionAndDecimal) {
  EXPECT_EQ(BigInt(0).ToDecimal(), "0");
  EXPECT_EQ(BigInt(42).ToDecimal(), "42");
  EXPECT_EQ(BigInt(-7).ToDecimal(), "-7");
  EXPECT_EQ(BigInt(uint64_t{18446744073709551615ull}).ToDecimal(),
            "18446744073709551615");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecimal(), "-9223372036854775808");
}

TEST(BigIntTest, DecimalRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::FromDecimal(big).ToDecimal(), big);
  EXPECT_EQ(BigInt::FromDecimal("-" + big).ToDecimal(), "-" + big);
}

TEST(BigIntTest, HexRoundTrip) {
  const std::string hex = "deadbeefcafef00d123456789abcdef0";
  EXPECT_EQ(BigInt::FromHex(hex).ToHex(), hex);
  EXPECT_EQ(BigInt::FromHex("0").ToHex(), "0");
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromHex("ffffffffffffffffffffffff");
  BigInt b(1);
  EXPECT_EQ((a + b).ToHex(), "1000000000000000000000000");
}

TEST(BigIntTest, SignedAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-3)).ToI64(), 2);
  EXPECT_EQ((BigInt(-5) + BigInt(3)).ToI64(), -2);
  EXPECT_EQ((BigInt(-5) + BigInt(-3)).ToI64(), -8);
  EXPECT_EQ((BigInt(5) + BigInt(-5)).ToI64(), 0);
}

TEST(BigIntTest, SubtractionBorrow) {
  BigInt a = BigInt::FromHex("10000000000000000");
  EXPECT_EQ((a - BigInt(1)).ToHex(), "ffffffffffffffff");
  EXPECT_EQ((BigInt(3) - BigInt(10)).ToI64(), -7);
}

TEST(BigIntTest, MultiplicationMatchesKnownProduct) {
  BigInt a = BigInt::FromDecimal("123456789123456789");
  BigInt b = BigInt::FromDecimal("987654321987654321");
  EXPECT_EQ((a * b).ToDecimal(), "121932631356500531347203169112635269");
}

TEST(BigIntTest, MultiplicationSignRules) {
  EXPECT_EQ((BigInt(-4) * BigInt(5)).ToI64(), -20);
  EXPECT_EQ((BigInt(-4) * BigInt(-5)).ToI64(), 20);
  EXPECT_EQ((BigInt(0) * BigInt(-5)).ToI64(), 0);
}

TEST(BigIntTest, KaratsubaAgreesWithSchoolbookProperty) {
  // Products large enough to trip the Karatsuba path are validated against
  // the identity (a+b)^2 = a^2 + 2ab + b^2.
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    BigInt a = BigInt::RandomBits(rng, 2000);
    BigInt b = BigInt::RandomBits(rng, 1900);
    BigInt lhs = (a + b) * (a + b);
    BigInt rhs = a * a + (a * b << 1) + b * b;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigIntTest, DivModEuclideanProperty) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    BigInt a = BigInt::RandomBits(rng, 512);
    BigInt b = BigInt::RandomBits(rng, 130 + trial);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToI64(), 3);
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToI64(), -3);
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToI64(), -3);
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToI64(), 3);
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToI64(), -1);
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToI64(), 1);
}

TEST(BigIntTest, ShiftRoundTrip) {
  BigInt a = BigInt::FromDecimal("982451653");
  for (int s : {1, 31, 32, 33, 64, 100}) {
    EXPECT_EQ(((a << s) >> s), a) << "shift " << s;
  }
  EXPECT_EQ((BigInt(1) << 128).ToHex(),
            "100000000000000000000000000000000");
}

TEST(BigIntTest, BitAccess) {
  BigInt a = BigInt::FromHex("8000000000000001");
  EXPECT_EQ(a.BitLength(), 64);
  EXPECT_TRUE(a.GetBit(0));
  EXPECT_TRUE(a.GetBit(63));
  EXPECT_FALSE(a.GetBit(32));
  EXPECT_FALSE(a.GetBit(1000));
  EXPECT_EQ(BigInt(0).BitLength(), 0);
}

TEST(BigIntTest, ComparisonOrdering) {
  EXPECT_TRUE(BigInt(-2) < BigInt(-1));
  EXPECT_TRUE(BigInt(-1) < BigInt(0));
  EXPECT_TRUE(BigInt(0) < BigInt(1));
  EXPECT_TRUE(BigInt::FromDecimal("99999999999999999999") >
              BigInt::FromDecimal("9999999999999999999"));
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    BigInt a = BigInt::RandomBits(rng, 10 + trial * 17);
    EXPECT_EQ(BigInt::FromBytes(a.ToBytes()), a);
  }
}

TEST(BigIntTest, RandomBitsHasExactLength) {
  Rng rng(33);
  for (int bits : {1, 2, 31, 32, 33, 64, 257, 1024}) {
    EXPECT_EQ(BigInt::RandomBits(rng, bits).BitLength(), bits);
  }
}

TEST(BigIntTest, RandomBelowStaysBelow) {
  Rng rng(44);
  BigInt bound = BigInt::FromDecimal("1000000000000000000000");
  for (int i = 0; i < 50; ++i) {
    BigInt v = BigInt::RandomBelow(rng, bound);
    EXPECT_TRUE(v < bound);
    EXPECT_FALSE(v.is_negative());
  }
}

TEST(ModMathTest, ModNonNegative) {
  EXPECT_EQ(Mod(BigInt(-7), BigInt(3)).ToI64(), 2);
  EXPECT_EQ(Mod(BigInt(7), BigInt(3)).ToI64(), 1);
  EXPECT_EQ(Mod(BigInt(-6), BigInt(3)).ToI64(), 0);
}

TEST(ModMathTest, GcdAndLcm) {
  EXPECT_EQ(Gcd(BigInt(12), BigInt(18)).ToI64(), 6);
  EXPECT_EQ(Gcd(BigInt(-12), BigInt(18)).ToI64(), 6);
  EXPECT_EQ(Gcd(BigInt(17), BigInt(5)).ToI64(), 1);
  EXPECT_EQ(Lcm(BigInt(4), BigInt(6)).ToI64(), 12);
}

TEST(ModMathTest, ModInverseProperty) {
  Rng rng(55);
  BigInt m = RandomPrime(rng, 64);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::RandomBelow(rng, m - BigInt(1)) + BigInt(1);
    BigInt inv = ModInverse(a, m);
    EXPECT_EQ(ModMul(a, inv, m).ToI64(), 1);
  }
}

TEST(ModMathTest, TryModInverseFailsOnCommonFactor) {
  BigInt out;
  EXPECT_FALSE(TryModInverse(BigInt(6), BigInt(9), &out));
  EXPECT_TRUE(TryModInverse(BigInt(2), BigInt(9), &out));
  EXPECT_EQ(out.ToI64(), 5);
}

TEST(ModMathTest, ModExpSmallKnownValues) {
  EXPECT_EQ(ModExp(BigInt(2), BigInt(10), BigInt(1000)).ToI64(), 24);
  EXPECT_EQ(ModExp(BigInt(3), BigInt(0), BigInt(7)).ToI64(), 1);
  EXPECT_EQ(ModExp(BigInt(5), BigInt(117), BigInt(19)).ToI64(), 1);  // Fermat
}

TEST(ModMathTest, ModExpFermatLittleTheoremProperty) {
  Rng rng(66);
  BigInt p = RandomPrime(rng, 128);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(rng, p - BigInt(2)) + BigInt(1);
    EXPECT_EQ(ModExp(a, p - BigInt(1), p), BigInt(1));
  }
}

TEST(ModMathTest, ModExpMatchesNaiveOnEvenModulus) {
  Rng rng(67);
  for (int i = 0; i < 10; ++i) {
    int64_t a = rng.NextInt(0, 1000);
    int64_t e = rng.NextInt(0, 20);
    int64_t m = 2 * rng.NextInt(1, 500);
    int64_t expected = 1;
    for (int j = 0; j < e; ++j) expected = expected * a % m;
    EXPECT_EQ(ModExp(BigInt(a), BigInt(e), BigInt(m)).ToI64(), expected);
  }
}

TEST(ModMathTest, MontgomeryMulMatchesPlainModMul) {
  Rng rng(77);
  BigInt m = RandomPrime(rng, 256);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 25; ++i) {
    BigInt a = BigInt::RandomBelow(rng, m);
    BigInt b = BigInt::RandomBelow(rng, m);
    BigInt mont = ctx.FromMont(ctx.MontMul(ctx.ToMont(a), ctx.ToMont(b)));
    EXPECT_EQ(mont, ModMul(a, b, m));
  }
}

TEST(ModMathTest, MontgomeryExpMatchesSquareMultiplyProperty) {
  Rng rng(88);
  // Composite odd modulus exercises the non-prime path too.
  BigInt m = RandomPrime(rng, 120) * RandomPrime(rng, 120);
  MontgomeryCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    BigInt a = BigInt::RandomBelow(rng, m);
    BigInt e = BigInt::RandomBits(rng, 64);
    // (a^e)^2 == a^(2e)
    BigInt lhs = ModMul(ctx.Exp(a, e), ctx.Exp(a, e), m);
    BigInt rhs = ctx.Exp(a, e << 1);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(ModMathTest, WindowedExpEdgeCases) {
  Rng rng(7);
  // Single-limb odd modulus (2^32 - 5, prime): the CIOS loop runs with
  // k == 1, where off-by-one bounds in the scratch handling would show.
  BigInt small_m = BigInt::FromDecimal("4294967291");
  MontgomeryCtx small(small_m);
  for (int i = 0; i < 8; ++i) {
    BigInt a = BigInt::RandomBelow(rng, small_m);
    BigInt e = BigInt::RandomBits(rng, 48);
    EXPECT_EQ(small.Exp(a, e), small.ExpBinary(a, e));
  }

  BigInt m = RandomPrime(rng, 160) * RandomPrime(rng, 160);
  MontgomeryCtx ctx(m);
  BigInt a = BigInt::RandomBelow(rng, m);
  // e = 0: the empty window loop must still yield the identity.
  EXPECT_EQ(ctx.Exp(a, BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.ExpBinary(a, BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.Exp(BigInt(0), BigInt(0)), BigInt(1));
  // Base at and above the modulus: ToMont must reduce first.
  EXPECT_EQ(ctx.Exp(m, BigInt(5)), BigInt(0));
  BigInt e = BigInt::RandomBits(rng, 100);
  EXPECT_EQ(ctx.Exp(a + m, e), ctx.Exp(a, e));
  EXPECT_EQ(ctx.Exp(a + m * BigInt(3), e), ctx.Exp(a, e));
}

TEST(ModMathTest, WindowedExpMatchesBinaryLadderSweep) {
  // Differential sweep: the fixed-window path (all window sizes, selected
  // by exponent length) against the reference square-and-multiply ladder,
  // across modulus widths from one limb to RSA-sized.
  Rng rng(8);
  for (int mod_bits : {34, 64, 96, 256, 512, 1024}) {
    BigInt m = BigInt::RandomBits(rng, mod_bits);
    if (!m.GetBit(0)) m = m + BigInt(1);  // Montgomery needs odd.
    MontgomeryCtx ctx(m);
    for (int exp_bits : {1, 5, 17, 40, 130, 300}) {
      BigInt a = BigInt::RandomBelow(rng, m);
      BigInt e = BigInt::RandomBits(rng, exp_bits);
      EXPECT_EQ(ctx.Exp(a, e), ctx.ExpBinary(a, e))
          << "mod_bits=" << mod_bits << " exp_bits=" << exp_bits;
    }
  }
}

TEST(ModMathTest, FixedBasePowersMatchGeneralExp) {
  Rng rng(9);
  BigInt m = RandomPrime(rng, 256);
  MontgomeryCtx ctx(m);
  BigInt g = BigInt::RandomBelow(rng, m);
  constexpr int kExpBits = 192;
  MontFixedBasePowers table(ctx, g, kExpBits);
  EXPECT_EQ(table.Exp(BigInt(0)), BigInt(1));
  EXPECT_EQ(table.Exp(BigInt(1)), g % m);
  for (int bits : {3, 30, 64, 191, kExpBits}) {
    BigInt e = BigInt::RandomBits(rng, bits);
    EXPECT_EQ(table.Exp(e), ctx.Exp(g, e)) << "exp bits " << bits;
  }
  // All-ones exponent exercises every table row's top digit.
  BigInt ones = (BigInt(1) << kExpBits) - BigInt(1);
  EXPECT_EQ(table.Exp(ones), ctx.Exp(g, ones));
}

TEST(ModMathTest, CrtCombineReconstructs) {
  Rng rng(99);
  BigInt p = RandomPrime(rng, 96);
  BigInt q = RandomPrime(rng, 96);
  BigInt x = BigInt::RandomBelow(rng, p * q);
  BigInt rebuilt = CrtCombine(x % p, p, x % q, q);
  EXPECT_EQ(rebuilt, x);
}

TEST(PrimeTest, KnownPrimesAndComposites) {
  Rng rng(1);
  EXPECT_TRUE(IsProbablePrime(BigInt(2), rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(97), rng));
  EXPECT_TRUE(IsProbablePrime(BigInt::FromDecimal("2305843009213693951"),
                              rng));  // 2^61 - 1
  EXPECT_FALSE(IsProbablePrime(BigInt(1), rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(561), rng));  // Carmichael number
  EXPECT_FALSE(IsProbablePrime(
      BigInt::FromDecimal("2305843009213693953"), rng));
}

TEST(PrimeTest, RandomPrimeHasRequestedSize) {
  Rng rng(2);
  for (int bits : {16, 48, 128}) {
    BigInt p = RandomPrime(rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(PrimeTest, SafePrimeStructure) {
  Rng rng(3);
  BigInt p = RandomSafePrime(rng, 32);
  EXPECT_TRUE(IsProbablePrime(p, rng));
  EXPECT_TRUE(IsProbablePrime((p - BigInt(1)) >> 1, rng));
}

TEST(PrimeTest, FixedGroupPrimeIsPrime) {
  Rng rng(4);
  const BigInt& p = Rfc3526Prime1024();
  EXPECT_EQ(p.BitLength(), 1024);
  EXPECT_TRUE(IsProbablePrime(p, rng, 8));
  // Safe prime: (p-1)/2 is also prime.
  EXPECT_TRUE(IsProbablePrime((p - BigInt(1)) >> 1, rng, 4));
}

}  // namespace
}  // namespace pafs
