// Tests for the privacy substrate: partition-based risk metrics, the
// incremental evaluator's equivalence to from-scratch evaluation, the
// Chow-Liu model, and the inference attack.
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "data/warfarin_gen.h"
#include "privacy/chow_liu.h"
#include "privacy/inference_attack.h"
#include "privacy/risk.h"
#include "util/random.h"

namespace pafs {
namespace {

// Tiny handcrafted dataset where risks are computable by hand.
// Features: public p (card 2), sensitive s (card 2).
// Rows: (p=0,s=0) x4, (p=0,s=1) x1, (p=1,s=0) x1, (p=1,s=1) x4.
Dataset HandRiskDataset() {
  std::vector<FeatureSpec> features = {{"p", 2, false}, {"s", 2, true}};
  Dataset data(features, 2);
  for (int i = 0; i < 4; ++i) data.AddRow({0, 0}, 0);
  data.AddRow({0, 1}, 0);
  data.AddRow({1, 0}, 0);
  for (int i = 0; i < 4; ++i) data.AddRow({1, 1}, 0);
  return data;
}

TEST(DisclosureRiskTest, BaselineWithNoDisclosure) {
  Dataset data = HandRiskDataset();
  DisclosureRisk risk(data);
  RiskReport report = risk.Evaluate({});
  ASSERT_EQ(report.per_sensitive.size(), 1u);
  // Marginal of s is 50/50: baseline MAP success = 0.5, no lift.
  EXPECT_NEAR(report.per_sensitive[0].baseline_success, 0.5, 1e-12);
  EXPECT_NEAR(report.per_sensitive[0].attack_success, 0.5, 1e-12);
  EXPECT_NEAR(report.max_lift, 0.0, 1e-12);
  EXPECT_NEAR(report.per_sensitive[0].mutual_information, 0.0, 1e-12);
}

TEST(DisclosureRiskTest, HandComputedLift) {
  Dataset data = HandRiskDataset();
  DisclosureRisk risk(data);
  RiskReport report = risk.Evaluate({0});
  // Given p: P(s = majority | p) = 0.8 in both cells.
  EXPECT_NEAR(report.per_sensitive[0].attack_success, 0.8, 1e-12);
  EXPECT_NEAR(report.max_lift, 0.3, 1e-12);
  EXPECT_NEAR(report.per_sensitive[0].worst_posterior, 0.8, 1e-12);
  // MI = H(s) - H(s|p) = 1 - h(0.2).
  double h = -(0.2 * std::log2(0.2) + 0.8 * std::log2(0.8));
  EXPECT_NEAR(report.per_sensitive[0].mutual_information, 1.0 - h, 1e-9);
}

TEST(DisclosureRiskTest, RiskIsMonotoneInDisclosure) {
  Rng rng(1);
  Dataset data = GenerateWarfarinCohort(3000, rng);
  DisclosureRisk risk(data);
  std::vector<int> disclosure;
  double last = 0.0;
  for (int f : data.PublicCandidateFeatures()) {
    disclosure.push_back(f);
    double lift = risk.Evaluate(disclosure).max_lift;
    EXPECT_GE(lift, last - 1e-12) << "feature " << f;
    last = lift;
  }
  EXPECT_GT(last, 0.05);  // Full disclosure leaks noticeably.
}

TEST(DisclosureRiskTest, RaceDisclosureLeaksGenotype) {
  Rng rng(2);
  Dataset data = GenerateWarfarinCohort(5000, rng);
  DisclosureRisk risk(data);
  double race_lift = risk.Evaluate({WarfarinSchema::kRace}).max_lift;
  double smoker_lift = risk.Evaluate({WarfarinSchema::kSmoker}).max_lift;
  // Ancestry is the genotype proxy; smoking is nearly independent.
  EXPECT_GT(race_lift, smoker_lift + 0.02);
}

TEST(DisclosureRiskTest, IncrementalMatchesFromScratch) {
  Rng rng(3);
  Dataset data = GenerateWarfarinCohort(2000, rng);
  DisclosureRisk risk(data);
  DisclosureRisk::Incremental inc(risk);
  std::vector<int> disclosure;
  for (int f : {WarfarinSchema::kRace, WarfarinSchema::kAge,
                WarfarinSchema::kWeight, WarfarinSchema::kSmoker}) {
    disclosure.push_back(f);
    inc.Push(f);
    RiskReport scratch = risk.Evaluate(disclosure);
    RiskReport incremental = inc.Current();
    EXPECT_NEAR(incremental.max_lift, scratch.max_lift, 1e-12);
    EXPECT_NEAR(incremental.max_mutual_information,
                scratch.max_mutual_information, 1e-9);
    for (size_t s = 0; s < scratch.per_sensitive.size(); ++s) {
      EXPECT_NEAR(incremental.per_sensitive[s].attack_success,
                  scratch.per_sensitive[s].attack_success, 1e-12);
    }
  }
}

TEST(DisclosureRiskTest, PushPopRestoresState) {
  Rng rng(4);
  Dataset data = GenerateWarfarinCohort(1000, rng);
  DisclosureRisk risk(data);
  DisclosureRisk::Incremental inc(risk);
  inc.Push(WarfarinSchema::kRace);
  double with_race = inc.Current().max_lift;
  inc.Push(WarfarinSchema::kAge);
  inc.Pop();
  EXPECT_NEAR(inc.Current().max_lift, with_race, 1e-12);
  EXPECT_EQ(inc.disclosed(), std::vector<int>{WarfarinSchema::kRace});
}

TEST(DisclosureRiskTest, LabelDisclosureAddsRisk) {
  // The Fredrikson setting: observing the dose recommendation must make
  // genotype inference strictly easier than demographics alone.
  Rng rng(12);
  Dataset data = GenerateWarfarinCohort(6000, rng);
  DisclosureRisk risk(data);
  std::vector<int> demographics = {WarfarinSchema::kAge,
                                   WarfarinSchema::kRace};
  RiskReport without = risk.Evaluate(demographics);
  RiskReport with_label = risk.EvaluateWithLabel(demographics);
  EXPECT_GT(with_label.max_lift, without.max_lift + 0.01);
  // Dose alone already leaks VKORC1 (it drives the dose).
  RiskReport dose_only = risk.EvaluateWithLabel({});
  EXPECT_GT(dose_only.max_lift, 0.05);
}

TEST(DisclosureRiskTest, MinCellSizeShrinksWithDisclosure) {
  Rng rng(13);
  Dataset data = GenerateWarfarinCohort(3000, rng);
  DisclosureRisk risk(data);
  size_t last = risk.Evaluate({}).min_cell_size;
  EXPECT_EQ(last, data.size());
  std::vector<int> disclosure;
  for (int f : {WarfarinSchema::kRace, WarfarinSchema::kAge,
                WarfarinSchema::kWeight}) {
    disclosure.push_back(f);
    size_t cell = risk.Evaluate(disclosure).min_cell_size;
    EXPECT_LE(cell, last);
    last = cell;
  }
  EXPECT_LT(last, 50u);  // Three-attribute cells get small.
}

TEST(DisclosureRiskTest, DiversityDropsWithDisclosure) {
  Rng rng(14);
  Dataset data = GenerateWarfarinCohort(4000, rng);
  DisclosureRisk risk(data);
  RiskReport nothing = risk.Evaluate({});
  // One big cell: both genotypes fully diverse (all values present).
  EXPECT_EQ(nothing.min_diversity, 3);  // VKORC1 has 3 values.
  RiskReport lots = risk.Evaluate(data.PublicCandidateFeatures());
  EXPECT_LT(lots.min_diversity, nothing.min_diversity);
  EXPECT_GE(lots.min_diversity, 1);
}

TEST(ChowLiuTest, PosteriorsSumToOne) {
  Rng rng(5);
  Dataset data = GenerateWarfarinCohort(3000, rng);
  ChowLiuTree model;
  model.Train(data);
  for (int target : {WarfarinSchema::kVkorc1, WarfarinSchema::kCyp2c9}) {
    std::vector<double> posterior =
        model.Posterior(target, {{WarfarinSchema::kRace, 1}});
    double total = 0;
    for (double p : posterior) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ChowLiuTest, EvidenceShiftsPosteriorTowardCorrelation) {
  Rng rng(6);
  Dataset data = GenerateWarfarinCohort(6000, rng);
  ChowLiuTree model;
  model.Train(data);
  // Asian ancestry (race=1) should sharply raise P(VKORC1 = AA).
  std::vector<double> asian =
      model.Posterior(WarfarinSchema::kVkorc1, {{WarfarinSchema::kRace, 1}});
  std::vector<double> black =
      model.Posterior(WarfarinSchema::kVkorc1, {{WarfarinSchema::kRace, 2}});
  EXPECT_GT(asian[2], 0.6);
  EXPECT_LT(black[2], 0.1);
}

TEST(ChowLiuTest, TreeStructureIsConnected) {
  Rng rng(7);
  Dataset data = GenerateWarfarinCohort(1000, rng);
  ChowLiuTree model;
  model.Train(data);
  int roots = 0;
  for (int v = 0; v < model.num_variables(); ++v) {
    if (model.parent(v) < 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(ChowLiuTest, LogLikelihoodFinite) {
  Rng rng(8);
  Dataset data = GenerateWarfarinCohort(500, rng);
  ChowLiuTree model;
  model.Train(data);
  for (size_t i = 0; i < 20; ++i) {
    double ll = model.LogLikelihood(data.row(i));
    EXPECT_TRUE(std::isfinite(ll));
    EXPECT_LT(ll, 0.0);
  }
}

TEST(ChowLiuTest, PosteriorMatchesEmpiricalConditional) {
  // With a single strong pairwise dependency the tree must recover the
  // empirical conditional closely.
  Rng rng(9);
  std::vector<FeatureSpec> features = {{"a", 2, false}, {"b", 2, true}};
  Dataset data(features, 2);
  for (int i = 0; i < 4000; ++i) {
    int a = rng.NextBool(0.5);
    int b = rng.NextBool(a ? 0.9 : 0.2);
    data.AddRow({a, b}, 0);
  }
  ChowLiuTree model;
  model.Train(data);
  std::vector<double> p_given_a1 = model.Posterior(1, {{0, 1}});
  EXPECT_NEAR(p_given_a1[1], 0.9, 0.03);
  std::vector<double> p_given_a0 = model.Posterior(1, {{0, 0}});
  EXPECT_NEAR(p_given_a0[1], 0.2, 0.03);
}

TEST(InferenceAttackTest, DisclosureImprovesAttack) {
  Rng rng(10);
  Dataset cohort = GenerateWarfarinCohort(6000, rng);
  auto [public_data, victims] = cohort.Split(0.5, rng);
  ChowLiuTree adversary;
  adversary.Train(public_data);

  auto no_disclosure = RunInferenceAttack(adversary, victims, {});
  auto with_race = RunInferenceAttack(adversary, victims,
                                      {WarfarinSchema::kRace});
  for (size_t s = 0; s < no_disclosure.size(); ++s) {
    EXPECT_GE(with_race[s].attack_accuracy,
              no_disclosure[s].attack_accuracy - 0.02);
  }
  // VKORC1 specifically must become noticeably easier to infer.
  EXPECT_GT(with_race[0].attack_accuracy,
            no_disclosure[0].attack_accuracy + 0.03);
}

TEST(InferenceAttackTest, RiskMetricTracksAttack) {
  // The partition-based lift and the simulated attack's accuracy gain
  // should order disclosure sets the same way.
  Rng rng(11);
  Dataset cohort = GenerateWarfarinCohort(6000, rng);
  auto [public_data, victims] = cohort.Split(0.5, rng);
  ChowLiuTree adversary;
  adversary.Train(public_data);
  DisclosureRisk risk(public_data);

  std::vector<std::vector<int>> sets = {
      {},
      {WarfarinSchema::kSmoker},
      {WarfarinSchema::kRace},
      {WarfarinSchema::kRace, WarfarinSchema::kAge},
  };
  std::vector<double> lifts, attack_gains;
  for (const auto& s : sets) {
    lifts.push_back(risk.Evaluate(s).max_lift);
    auto results = RunInferenceAttack(adversary, victims, s);
    double gain = 0;
    for (const auto& r : results) {
      gain = std::max(gain, r.attack_accuracy - r.baseline_accuracy);
    }
    attack_gains.push_back(gain);
  }
  // Race-based sets must rank above smoker-only and empty in both.
  EXPECT_GT(lifts[2], lifts[1]);
  EXPECT_GT(attack_gains[2], attack_gains[1] - 0.01);
  EXPECT_GE(lifts[3], lifts[2]);
}

}  // namespace
}  // namespace pafs
