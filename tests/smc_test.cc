// Tests for the secure classifiers: each protocol must agree with its
// plaintext model on every tested row, under any disclosure set, and
// disclosure must shrink the protocol cost.
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/paillier.h"
#include "crypto/paillier_pool.h"
#include "data/warfarin_gen.h"
#include "ml/decision_tree.h"
#include "ml/linear_model.h"
#include "ml/naive_bayes.h"
#include "net/channel.h"
#include "ot/iknp.h"
#include "smc/cost_model.h"
#include "smc/secure_linear.h"
#include "smc/secure_linear_aby.h"
#include "smc/secure_nb.h"
#include "smc/secure_tree.h"
#include "util/random.h"

namespace pafs {
namespace {

class SmcTest : public ::testing::Test {
 protected:
  SmcTest() : rng_(1234), data_(GenerateWarfarinCohort(1200, rng_)) {
    nb_.Train(data_);
    tree_.Train(data_);
    linear_.Train(data_, LinearTrainParams());
  }

  std::map<int, int> DiscloseFor(const std::vector<int>& row,
                                 const std::vector<int>& features) {
    std::map<int, int> out;
    for (int f : features) out[f] = row[f];
    return out;
  }

  Rng rng_;
  Dataset data_;
  NaiveBayes nb_;
  DecisionTree tree_;
  LinearModel linear_;
  MemChannelPair channel_;
  OtExtSender ot_sender_;
  OtExtReceiver ot_receiver_;
  Rng server_rng_{42}, client_rng_{43};
};

TEST_F(SmcTest, CommonHelpers) {
  EXPECT_EQ(BitsFor(2), 1);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 2);
  EXPECT_EQ(BitsFor(9), 4);

  BitVec bits(0);
  AppendSigned(bits, -5, 8);
  AppendSigned(bits, 100, 8);
  EXPECT_EQ(DecodeSigned(bits, 0, 8), -5);
  EXPECT_EQ(DecodeSigned(bits, 8, 8), 100);
}

TEST_F(SmcTest, HiddenLayoutSkipsDisclosed) {
  std::map<int, int> disclosed = {{WarfarinSchema::kRace, 1},
                                  {WarfarinSchema::kAge, 3}};
  HiddenLayout layout = HiddenLayout::Make(data_.features(), disclosed);
  EXPECT_EQ(layout.num_hidden(), WarfarinSchema::kNumFeatures - 2);
  for (int h = 0; h < layout.num_hidden(); ++h) {
    EXPECT_NE(layout.hidden_features()[h], WarfarinSchema::kRace);
    EXPECT_NE(layout.hidden_features()[h], WarfarinSchema::kAge);
  }
  // Encoding round-trips per feature.
  const std::vector<int>& row = data_.row(0);
  BitVec bits = layout.EncodeRow(row);
  for (int h = 0; h < layout.num_hidden(); ++h) {
    EXPECT_EQ(
        static_cast<int>(bits.ToU64(layout.bit_offset(h), layout.value_bits(h))),
        row[layout.hidden_features()[h]]);
  }
}

TEST_F(SmcTest, SecureNbMatchesPlaintextNoDisclosure) {
  SecureNbCircuit spec(data_.features(), data_.num_classes(), {});
  for (size_t i = 0; i < 12; ++i) {
    const std::vector<int>& row = data_.row(i * 37);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = SecureNbRunServer(channel_.endpoint(0), spec, nb_, {},
                                       ot_sender_, server_rng_);
    });
    client_stats = SecureNbRunClient(channel_.endpoint(1), spec, row,
                                     ot_receiver_, client_rng_);
    server.join();
    EXPECT_EQ(client_stats.predicted_class, nb_.Predict(row)) << "row " << i;
    EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
  }
}

TEST_F(SmcTest, SecureNbMatchesPlaintextWithDisclosure) {
  std::vector<int> disclosure = {WarfarinSchema::kRace, WarfarinSchema::kAge,
                                 WarfarinSchema::kWeight};
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<int>& row = data_.row(i * 53);
    std::map<int, int> disclosed = DiscloseFor(row, disclosure);
    SecureNbCircuit spec(data_.features(), data_.num_classes(), disclosed);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = SecureNbRunServer(channel_.endpoint(0), spec, nb_,
                                       disclosed, ot_sender_, server_rng_);
    });
    client_stats = SecureNbRunClient(channel_.endpoint(1), spec, row,
                                     ot_receiver_, client_rng_);
    server.join();
    EXPECT_EQ(client_stats.predicted_class, nb_.Predict(row)) << "row " << i;
  }
}

TEST_F(SmcTest, SecureNbDisclosureShrinksCircuit) {
  SecureNbCircuit full(data_.features(), data_.num_classes(), {});
  std::map<int, int> disclosed = {{WarfarinSchema::kAge, 4},
                                  {WarfarinSchema::kRace, 0},
                                  {WarfarinSchema::kWeight, 1},
                                  {WarfarinSchema::kHeight, 2}};
  SecureNbCircuit partial(data_.features(), data_.num_classes(), disclosed);
  EXPECT_LT(partial.circuit().Stats().and_gates,
            full.circuit().Stats().and_gates);
  EXPECT_LT(partial.circuit().evaluator_inputs(),
            full.circuit().evaluator_inputs());
}

TEST_F(SmcTest, SecureTreeMatchesPlaintext) {
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<int>& row = data_.row(i * 61);
    SecureTreeCircuit spec(tree_, data_.features(), data_.num_classes(), {});
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = SecureTreeRunServer(channel_.endpoint(0), spec, tree_,
                                         ot_sender_, server_rng_);
    });
    client_stats =
        SecureTreeRunClient(channel_.endpoint(1), data_.features(),
                            data_.num_classes(), row, ot_receiver_, client_rng_);
    server.join();
    EXPECT_EQ(client_stats.predicted_class, tree_.Predict(row)) << "row " << i;
    EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
  }
}

TEST_F(SmcTest, SecureTreeWithSpecialization) {
  std::vector<int> disclosure = {WarfarinSchema::kRace, WarfarinSchema::kAge,
                                 WarfarinSchema::kAmiodarone};
  for (size_t i = 0; i < 10; ++i) {
    const std::vector<int>& row = data_.row(i * 79);
    std::map<int, int> disclosed = DiscloseFor(row, disclosure);
    DecisionTree specialized = tree_.Specialize(disclosed);
    SecureTreeCircuit spec(specialized, data_.features(), data_.num_classes(),
                           disclosed);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = SecureTreeRunServer(channel_.endpoint(0), spec,
                                         specialized, ot_sender_, server_rng_);
    });
    client_stats =
        SecureTreeRunClient(channel_.endpoint(1), data_.features(),
                            data_.num_classes(), row, ot_receiver_, client_rng_);
    server.join();
    EXPECT_EQ(client_stats.predicted_class, tree_.Predict(row)) << "row " << i;
  }
}

TEST_F(SmcTest, SecureTreeFullDisclosureOfUsedFeatures) {
  // Disclosing every feature the tree tests leaves a single-leaf circuit.
  const std::vector<int>& row = data_.row(7);
  std::map<int, int> disclosed = DiscloseFor(row, tree_.UsedFeatures());
  DecisionTree specialized = tree_.Specialize(disclosed);
  EXPECT_EQ(specialized.NumNodes(), 1u);
  SecureTreeCircuit spec(specialized, data_.features(), data_.num_classes(),
                         disclosed);
  EXPECT_EQ(spec.circuit().evaluator_inputs(), 0u);
  SmcRunStats server_stats, client_stats;
  std::thread server([&] {
    server_stats = SecureTreeRunServer(channel_.endpoint(0), spec, specialized,
                                       ot_sender_, server_rng_);
  });
  client_stats =
      SecureTreeRunClient(channel_.endpoint(1), data_.features(),
                          data_.num_classes(), row, ot_receiver_, client_rng_);
  server.join();
  EXPECT_EQ(client_stats.predicted_class, tree_.Predict(row));
}

TEST_F(SmcTest, SecureLinearMatchesPlaintext) {
  Rng key_rng(9);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);
  SecureLinearProtocol protocol(data_.features(), data_.num_classes(), {});
  int fixed_point_flips = 0;
  for (size_t i = 0; i < 6; ++i) {
    const std::vector<int>& row = data_.row(i * 97);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = protocol.RunServer(channel_.endpoint(0), linear_, {},
                                        ot_sender_, server_rng_);
    });
    client_stats = protocol.RunClient(channel_.endpoint(1), keys, row,
                                      ot_receiver_, client_rng_);
    server.join();
    EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
    if (client_stats.predicted_class != linear_.Predict(row)) {
      ++fixed_point_flips;  // Allowed only on near-ties from quantization.
    }
  }
  EXPECT_LE(fixed_point_flips, 1);
}

TEST_F(SmcTest, SecureLinearPooledMatchesUnpooledAndPlaintext) {
  // The offline/online split at protocol level: both ends draw their
  // Paillier randomness from precomputed pad pools. The pooled run must
  // agree with the plaintext model exactly like the unpooled path, and
  // every pad must actually come from the pools (all hits, no misses).
  Rng key_rng(11);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);
  SecureLinearProtocol protocol(data_.features(), data_.num_classes(), {});

  Rng server_fill_rng(71);
  std::shared_ptr<PaillierPadPool> server_pool;
  PaillierPoolFn pool_for = [&](const BigInt& n) {
    if (server_pool == nullptr || !server_pool->MatchesModulus(n)) {
      server_pool = std::make_shared<PaillierPadPool>(
          PaillierPublicKey(n), 2u * data_.num_classes());
      server_pool->Refill(server_fill_rng, 2u * data_.num_classes());
    }
    return server_pool;
  };
  size_t client_pads = static_cast<size_t>(protocol.NumClientCiphertexts());
  PaillierPadPool client_pool(keys.public_key, client_pads);
  Rng client_fill_rng(72);
  client_pool.Refill(client_fill_rng, client_pads);

  const std::vector<int>& row = data_.row(333);
  // Unpooled baseline on the same row: masks cancel exactly inside the
  // argmax circuit, so the predicted class is a deterministic function of
  // (row, model) that the pooled run must reproduce.
  SmcRunStats base_stats;
  {
    std::thread server([&] {
      protocol.RunServer(channel_.endpoint(0), linear_, {}, ot_sender_,
                         server_rng_);
    });
    base_stats = protocol.RunClient(channel_.endpoint(1), keys, row,
                                    ot_receiver_, client_rng_);
    server.join();
  }

  SmcRunStats server_stats, client_stats;
  std::thread server([&] {
    server_stats = protocol.RunServer(channel_.endpoint(0), linear_, {},
                                      ot_sender_, server_rng_,
                                      GarblingScheme::kHalfGates, pool_for);
  });
  client_stats =
      protocol.RunClient(channel_.endpoint(1), keys, row, ot_receiver_,
                         client_rng_, GarblingScheme::kHalfGates, &client_pool);
  server.join();

  EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
  EXPECT_EQ(client_stats.predicted_class, base_stats.predicted_class);
  EXPECT_EQ(client_pool.stats().hits, static_cast<uint64_t>(client_pads));
  EXPECT_EQ(client_pool.stats().misses, 0u);
  ASSERT_NE(server_pool, nullptr);
  // Server spends one encrypt pad + one rerandomize pad per class.
  EXPECT_EQ(server_pool->stats().hits,
            2u * static_cast<uint64_t>(data_.num_classes()));
  EXPECT_EQ(server_pool->stats().misses, 0u);
}

TEST_F(SmcTest, SecureLinearServerRejectsBadModulus) {
  // The announced modulus is untrusted wire data: an even or undersized n
  // must fail the query as a ProtocolError before any key/pool state is
  // built from it — not abort the process inside MontgomeryCtx.
  SecureLinearProtocol protocol(data_.features(), data_.num_classes(), {});
  Rng key_rng(12);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);

  BigInt even_n = keys.public_key.n() + BigInt(1);  // n odd, so n+1 even.
  channel_.endpoint(1).SendBigInt(even_n);
  EXPECT_THROW(protocol.RunServer(channel_.endpoint(0), linear_, {},
                                  ot_sender_, server_rng_),
               ProtocolError);

  channel_.endpoint(1).SendBigInt(BigInt(12345));  // Odd but tiny.
  EXPECT_THROW(protocol.RunServer(channel_.endpoint(0), linear_, {},
                                  ot_sender_, server_rng_),
               ProtocolError);
}

TEST_F(SmcTest, SecureLinearWithDisclosure) {
  Rng key_rng(10);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);
  std::vector<int> disclosure = {WarfarinSchema::kAge, WarfarinSchema::kRace,
                                 WarfarinSchema::kWeight,
                                 WarfarinSchema::kHeight,
                                 WarfarinSchema::kGender};
  for (size_t i = 0; i < 5; ++i) {
    const std::vector<int>& row = data_.row(i * 111);
    std::map<int, int> disclosed = DiscloseFor(row, disclosure);
    SecureLinearProtocol protocol(data_.features(), data_.num_classes(),
                                  disclosed);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = protocol.RunServer(channel_.endpoint(0), linear_,
                                        disclosed, ot_sender_, server_rng_);
    });
    client_stats = protocol.RunClient(channel_.endpoint(1), keys, row,
                                      ot_receiver_, client_rng_);
    server.join();
    // Fixed-point argmax must match the fixed-point plaintext reference.
    auto w = linear_.FixedWeights(kSmcScale);
    auto b = linear_.FixedBias(kSmcScale);
    int64_t best_score = INT64_MIN;
    int expected = -1;
    for (int c = 0; c < data_.num_classes(); ++c) {
      int64_t score = b[c];
      for (int f = 0; f < data_.num_features(); ++f) {
        score += w[c][linear_.FeatureOffset(f) + row[f]];
      }
      if (score > best_score) {
        best_score = score;
        expected = c;
      }
    }
    EXPECT_EQ(client_stats.predicted_class, expected) << "row " << i;
  }
}

TEST_F(SmcTest, AbyLinearMatchesFixedPointPlaintext) {
  SecureLinearAbyProtocol protocol(data_.features(), data_.num_classes(), {});
  for (size_t i = 0; i < 8; ++i) {
    const std::vector<int>& row = data_.row(i * 83);
    SmcRunStats server_stats, client_stats;
    std::thread server([&] {
      server_stats = protocol.RunServer(channel_.endpoint(0), linear_, {},
                                        ot_sender_, server_rng_);
    });
    client_stats =
        protocol.RunClient(channel_.endpoint(1), row, ot_receiver_,
                           client_rng_);
    server.join();
    EXPECT_EQ(server_stats.predicted_class, client_stats.predicted_class);
    // Exact fixed-point reference (shares reconstruct exactly).
    auto w = linear_.FixedWeights(kSmcScale);
    auto b = linear_.FixedBias(kSmcScale);
    int64_t best_score = INT64_MIN;
    int expected = -1;
    for (int c = 0; c < data_.num_classes(); ++c) {
      int64_t score = b[c];
      for (int f = 0; f < data_.num_features(); ++f) {
        score += w[c][linear_.FeatureOffset(f) + row[f]];
      }
      if (score > best_score) {
        best_score = score;
        expected = c;
      }
    }
    EXPECT_EQ(client_stats.predicted_class, expected) << "row " << i;
  }
}

TEST_F(SmcTest, AbyLinearWithDisclosureAgreesWithPaillierHybrid) {
  Rng key_rng(77);
  PaillierKeyPair keys = GeneratePaillierKey(key_rng, 256);
  std::vector<int> disclosure = {WarfarinSchema::kAge, WarfarinSchema::kRace,
                                 WarfarinSchema::kWeight};
  for (size_t i = 0; i < 4; ++i) {
    const std::vector<int>& row = data_.row(i * 139);
    std::map<int, int> disclosed = DiscloseFor(row, disclosure);
    SecureLinearAbyProtocol aby(data_.features(), data_.num_classes(),
                                disclosed);
    SecureLinearProtocol paillier(data_.features(), data_.num_classes(),
                                  disclosed);
    SmcRunStats aby_server, aby_client, pail_server, pail_client;
    std::thread s1([&] {
      aby_server = aby.RunServer(channel_.endpoint(0), linear_, disclosed,
                                 ot_sender_, server_rng_);
    });
    aby_client =
        aby.RunClient(channel_.endpoint(1), row, ot_receiver_, client_rng_);
    s1.join();
    std::thread s2([&] {
      pail_server = paillier.RunServer(channel_.endpoint(0), linear_,
                                       disclosed, ot_sender_, server_rng_);
    });
    pail_client = paillier.RunClient(channel_.endpoint(1), keys, row,
                                     ot_receiver_, client_rng_);
    s2.join();
    EXPECT_EQ(aby_client.predicted_class, pail_client.predicted_class)
        << "row " << i;
  }
}

TEST_F(SmcTest, AbyLinearOtCountScalesWithHiddenSlots) {
  SecureLinearAbyProtocol full(data_.features(), data_.num_classes(), {});
  std::map<int, int> disclosed = {{WarfarinSchema::kAge, 0},
                                  {WarfarinSchema::kRace, 0}};
  SecureLinearAbyProtocol partial(data_.features(), data_.num_classes(),
                                  disclosed);
  EXPECT_EQ(full.NumProductOts() - partial.NumProductOts(),
            (9 + 4) * data_.num_classes());
}

TEST_F(SmcTest, SecureLinearDisclosureReducesCiphertexts) {
  SecureLinearProtocol full(data_.features(), data_.num_classes(), {});
  std::map<int, int> disclosed = {{WarfarinSchema::kAge, 0},
                                  {WarfarinSchema::kRace, 0}};
  SecureLinearProtocol partial(data_.features(), data_.num_classes(),
                               disclosed);
  EXPECT_EQ(full.NumClientCiphertexts() - partial.NumClientCiphertexts(),
            9 + 4);  // Age (9 values) + race (4 values) one-hots vanish.
}

TEST_F(SmcTest, CostModelMatchesActualNbCircuit) {
  CostCalibration cal;
  SmcCostModel model(data_.features(), data_.num_classes(), cal);
  for (const std::set<int>& disclosed :
       {std::set<int>{}, std::set<int>{WarfarinSchema::kAge},
        std::set<int>{WarfarinSchema::kAge, WarfarinSchema::kRace}}) {
    std::map<int, int> as_map;
    for (int f : disclosed) as_map[f] = 0;
    SecureNbCircuit spec(data_.features(), data_.num_classes(), as_map);
    CostEstimate est = model.EstimateNb(disclosed);
    EXPECT_EQ(est.and_gates, spec.circuit().Stats().and_gates);
    EXPECT_EQ(est.ot_count, spec.circuit().evaluator_inputs());
  }
}

TEST_F(SmcTest, CostModelMonotoneInDisclosure) {
  CostCalibration cal;
  SmcCostModel model(data_.features(), data_.num_classes(), cal);
  std::set<int> disclosed;
  double last_nb = model.EstimateNb(disclosed).ComputeSeconds(cal);
  double last_lin = model.EstimateLinear(disclosed).ComputeSeconds(cal);
  double last_tree =
      model.EstimateTree(tree_, disclosed, data_).ComputeSeconds(cal);
  for (int f : data_.PublicCandidateFeatures()) {
    disclosed.insert(f);
    double nb = model.EstimateNb(disclosed).ComputeSeconds(cal);
    double lin = model.EstimateLinear(disclosed).ComputeSeconds(cal);
    double tr = model.EstimateTree(tree_, disclosed, data_).ComputeSeconds(cal);
    EXPECT_LE(nb, last_nb + 1e-12);
    EXPECT_LE(lin, last_lin + 1e-12);
    EXPECT_LE(tr, last_tree + 1e-9);
    last_nb = nb;
    last_lin = lin;
    last_tree = tr;
  }
}

TEST_F(SmcTest, CalibrationMeasurementIsSane) {
  Rng rng(5);
  // 256-bit modulus: large enough that encrypt's n-sized exponent clearly
  // dominates the scalar op's short exponent even under sanitizer skew
  // (at 128 bits the two are close and the comparison is flaky).
  CostCalibration cal = CostCalibration::Measure(256, rng);
  EXPECT_GT(cal.per_and_gate, 0);
  EXPECT_LT(cal.per_and_gate, 1e-4);
  EXPECT_GT(cal.per_pail_encrypt, cal.per_pail_scalar);
}

}  // namespace
}  // namespace pafs
