// Tests for the telemetry subsystem: counters, histogram quantiles, span
// nesting across party threads, enable/disable gating, and the JSON report.
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/warfarin_gen.h"
#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/random.h"

namespace pafs {
namespace {

// Each test owns the global registry for its duration.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PafsTelemetry::Reset();
    PafsTelemetry::Enable();
  }
  void TearDown() override {
    PafsTelemetry::Disable();
    PafsTelemetry::Reset();
  }
};

TEST_F(ObsTest, CounterCountsAndResets) {
  obs::Counter& c = obs::GetCounter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(&obs::GetCounter("test.counter"), &c);
  obs::ResetMetrics();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterIsConcurrencySafe) {
  obs::Counter& c = obs::GetCounter("test.concurrent");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST_F(ObsTest, DisabledMeansNoCollection) {
  PafsTelemetry::Disable();
  obs::GetCounter("test.gated").Add(100);
  obs::GetHistogram("test.gated_h").Record(1.0);
  { obs::TraceSpan span("test.gated_span"); }
  EXPECT_EQ(obs::GetCounter("test.gated").value(), 0u);
  EXPECT_EQ(obs::GetHistogram("test.gated_h").Snap().count, 0u);
  bool saw_phase = false;
  obs::VisitPhases([&](const std::string&, int, const obs::PhaseNode&) {
    saw_phase = true;
  });
  EXPECT_FALSE(saw_phase);

  // Re-enabling resumes collection on the same objects.
  PafsTelemetry::Enable();
  obs::GetCounter("test.gated").Add(7);
  EXPECT_EQ(obs::GetCounter("test.gated").value(), 7u);
}

TEST_F(ObsTest, HistogramExactStatsAndUniformQuantiles) {
  obs::Histogram& h = obs::GetHistogram("test.uniform");
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_DOUBLE_EQ(snap.sum, 500500.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
  // Geometric 2^(1/4) buckets bound relative quantile error by ~19%; allow
  // 25% for the rank discretization on top.
  EXPECT_NEAR(snap.p50, 500.0, 0.25 * 500.0);
  EXPECT_NEAR(snap.p95, 950.0, 0.25 * 950.0);
  EXPECT_NEAR(snap.p99, 990.0, 0.25 * 990.0);
}

TEST_F(ObsTest, HistogramConstantDistribution) {
  obs::Histogram& h = obs::GetHistogram("test.constant");
  for (int i = 0; i < 100; ++i) h.Record(0.125);
  obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_DOUBLE_EQ(snap.min, 0.125);
  EXPECT_DOUBLE_EQ(snap.max, 0.125);
  // All quantiles must clamp into [min, max] = a point.
  EXPECT_DOUBLE_EQ(snap.p50, 0.125);
  EXPECT_DOUBLE_EQ(snap.p99, 0.125);
}

TEST_F(ObsTest, HistogramHandlesExtremes) {
  obs::Histogram& h = obs::GetHistogram("test.extremes");
  h.Record(0.0);     // Below the first bucket: clamped into it, counted.
  h.Record(-5.0);    // Negative: dropped (domain is positive doubles).
  h.Record(std::nan(""));  // NaN: dropped likewise.
  h.Record(1e300);   // Beyond the last bucket: clamped into it, counted.
  obs::Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 1e300);
}

TEST_F(ObsTest, SpansNestIntoAggregatedTree) {
  obs::SetThreadParty("tester");
  for (int i = 0; i < 3; ++i) {
    obs::TraceSpan outer("outer");
    outer.AddAttr("weight", 2.0);
    {
      obs::TraceSpan inner("inner");
      obs::TraceSpan::CurrentAddBytes(10);
      obs::TraceSpan::CurrentAddRounds(1);
    }
  }
  bool found = false;
  obs::ForEachParty([&](const std::string& party,
                        const std::vector<const obs::PhaseNode*>& roots) {
    if (party != "tester") return;
    found = true;
    ASSERT_EQ(roots.size(), 1u);
    const obs::PhaseNode& outer = *roots[0];
    EXPECT_EQ(outer.name, "outer");
    EXPECT_EQ(outer.count, 3u);  // Re-entry aggregates, not duplicates.
    EXPECT_DOUBLE_EQ(outer.attrs.at("weight"), 6.0);
    ASSERT_EQ(outer.children.size(), 1u);
    const obs::PhaseNode& inner = *outer.children.at("inner");
    EXPECT_EQ(inner.count, 3u);
    EXPECT_EQ(inner.bytes, 10u * 3);
    EXPECT_EQ(inner.rounds, 3u);
    // The child executes inside the parent, so timings must nest.
    EXPECT_LE(inner.seconds, outer.seconds);
    EXPECT_GE(outer.SelfSeconds(), 0.0);
    EXPECT_NEAR(outer.SelfSeconds(), outer.seconds - inner.seconds, 1e-12);
  });
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, PartiesGetSeparateTreesAcrossThreads) {
  std::thread server([&] {
    obs::SetThreadParty("server");
    obs::TraceSpan root("work");
    obs::TraceSpan child("garble");
  });
  std::thread client([&] {
    obs::SetThreadParty("client");
    obs::TraceSpan root("work");
    obs::TraceSpan child("eval");
  });
  server.join();
  client.join();

  std::map<std::string, std::string> child_of_party;
  obs::ForEachParty([&](const std::string& party,
                        const std::vector<const obs::PhaseNode*>& roots) {
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0]->name, "work");
    ASSERT_EQ(roots[0]->children.size(), 1u);
    child_of_party[party] = roots[0]->children.begin()->first;
  });
  ASSERT_EQ(child_of_party.size(), 2u);
  EXPECT_EQ(child_of_party["server"], "garble");
  EXPECT_EQ(child_of_party["client"], "eval");
}

TEST_F(ObsTest, CurrentHelpersDropWithoutLiveSpan) {
  // No current span on this thread: attribution must be silently dropped,
  // not crash or leak into another party's tree.
  obs::SetThreadParty("orphan");
  obs::TraceSpan::CurrentAddBytes(999);
  obs::TraceSpan::CurrentAddAttr("ghost", 1.0);
  obs::ForEachParty([&](const std::string& party,
                        const std::vector<const obs::PhaseNode*>&) {
    EXPECT_NE(party, "orphan");
  });
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::GetCounter("test.reset").Add(5);
  obs::GetHistogram("test.reset_h").Record(2.0);
  { obs::TraceSpan span("test.reset_span"); }
  PafsTelemetry::Reset();
  EXPECT_EQ(obs::GetCounter("test.reset").value(), 0u);
  EXPECT_EQ(obs::GetHistogram("test.reset_h").Snap().count, 0u);
  bool saw_phase = false;
  obs::VisitPhases([&](const std::string&, int, const obs::PhaseNode&) {
    saw_phase = true;
  });
  EXPECT_FALSE(saw_phase);
}

// ---------------------------------------------------------------------------
// JSON round-trip: a minimal recursive-descent parser, enough to verify the
// report's structure and values (objects, arrays, strings, numbers).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key: " << key;
    static const JsonValue kEmpty;
    return it == object.end() ? kEmpty : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage in JSON";
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }
  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::kString;
        v.string = ParseString();
        return v;
      }
      case 't': pos_ += 4; return MakeBool(true);
      case 'f': pos_ += 5; return MakeBool(false);
      case 'n': pos_ += 4; return JsonValue();
      default: return ParseNumber();
    }
  }
  static JsonValue MakeBool(bool b) {
    JsonValue v;
    v.kind = JsonValue::kBool;
    v.boolean = b;
    return v;
  }
  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;  // Good enough for tests.
          default: out += esc; break;
        }
      } else {
        out += c;
      }
    }
    Expect('"');
    return out;
  }
  JsonValue ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }
  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }
  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = ParseString();
      Expect(':');
      v.object[key] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST_F(ObsTest, JsonReportRoundTrips) {
  obs::SetThreadParty("json-party");
  {
    obs::TraceSpan outer("phase \"quoted\"");  // Exercise string escaping.
    outer.AddAttr("gates", 128.0);
    obs::TraceSpan inner("child");
    obs::TraceSpan::CurrentAddBytes(4096);
  }
  obs::GetCounter("json.counter").Add(17);
  for (int i = 1; i <= 10; ++i) {
    obs::GetHistogram("json.hist").Record(static_cast<double>(i));
  }

  std::string json = obs::RenderJson();
  JsonValue root = JsonParser(json).Parse();
  ASSERT_EQ(root.kind, JsonValue::kObject);

  // Phase tree: parties -> phases -> children, with names and totals intact.
  const JsonValue& parties = root.at("parties");
  ASSERT_EQ(parties.kind, JsonValue::kArray);
  const JsonValue* party = nullptr;
  for (const JsonValue& p : parties.array) {
    if (p.at("party").string == "json-party") party = &p;
  }
  ASSERT_NE(party, nullptr);
  const JsonValue& phases = party->at("phases");
  ASSERT_EQ(phases.array.size(), 1u);
  const JsonValue& outer = phases.array[0];
  EXPECT_EQ(outer.at("name").string, "phase \"quoted\"");
  EXPECT_EQ(outer.at("count").number, 1.0);
  EXPECT_EQ(outer.at("attrs").at("gates").number, 128.0);
  EXPECT_GE(outer.at("seconds").number, outer.at("self_seconds").number);
  const JsonValue& children = outer.at("children");
  ASSERT_EQ(children.array.size(), 1u);
  EXPECT_EQ(children.array[0].at("name").string, "child");
  EXPECT_EQ(children.array[0].at("bytes").number, 4096.0);

  // Counters and histograms.
  EXPECT_EQ(root.at("counters").at("json.counter").number, 17.0);
  const JsonValue& hist = root.at("histograms").at("json.hist");
  EXPECT_EQ(hist.at("count").number, 10.0);
  EXPECT_EQ(hist.at("sum").number, 55.0);
  EXPECT_EQ(hist.at("min").number, 1.0);
  EXPECT_EQ(hist.at("max").number, 10.0);
  EXPECT_NEAR(hist.at("p50").number, 5.0, 0.25 * 5.0 + 1.0);
}

TEST_F(ObsTest, RetriedQueryAppearsInReport) {
  // A query that survives a dropped message via pipeline retry must leave
  // its trail in the telemetry report: the fault, the retry, the timeout.
  Rng rng(21);
  Dataset data = GenerateWarfarinCohort(300, rng);
  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.recv_timeout_seconds = 1.0;
  config.retry_backoff_seconds = 0.001;
  config.fault_plan.kind = FaultKind::kDrop;
  config.fault_plan.seed = 2;
  config.fault_plan.first_op = 6;
  config.fault_plan.max_faults = 1;
  SecureClassificationPipeline pipeline(data, config);
  const std::vector<int>& row = data.row(3);
  SmcRunStats stats = pipeline.Classify(row);
  EXPECT_EQ(stats.predicted_class, pipeline.PlaintextPredict(row));
  EXPECT_EQ(pipeline.faults_injected(), 1u);
  EXPECT_GE(obs::GetCounter("pipeline.retries").value(), 1u);
  EXPECT_GE(obs::GetCounter("faults.injected").value(), 1u);

  std::string text = obs::RenderText();
  EXPECT_NE(text.find("pipeline.retries"), std::string::npos);
  EXPECT_NE(text.find("faults.injected"), std::string::npos);
  std::string json = obs::RenderJson();
  EXPECT_NE(json.find("\"pipeline.retries\""), std::string::npos);
  EXPECT_NE(json.find("\"faults.injected\""), std::string::npos);
}

}  // namespace
}  // namespace pafs
