// Tests for the plaintext ML substrate: dataset mechanics, naive Bayes,
// decision trees (including specialization), linear models, and metrics.
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "data/warfarin_gen.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/linear_model.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "util/random.h"

namespace pafs {
namespace {

// A small dataset with a crisp pattern: label = (f0 AND f2-is-2).
Dataset MakeToyDataset(size_t n, Rng& rng) {
  std::vector<FeatureSpec> features = {
      {"f0", 2, false}, {"f1", 3, false}, {"f2", 4, true}};
  Dataset data(features, 2);
  for (size_t i = 0; i < n; ++i) {
    int f0 = rng.NextInt(0, 1);
    int f1 = rng.NextInt(0, 2);
    int f2 = rng.NextInt(0, 3);
    int label = (f0 == 1 && f2 == 2) ? 1 : 0;
    data.AddRow({f0, f1, f2}, label);
  }
  return data;
}

TEST(DatasetTest, BasicAccessors) {
  Rng rng(1);
  Dataset data = MakeToyDataset(50, rng);
  EXPECT_EQ(data.num_features(), 3);
  EXPECT_EQ(data.num_classes(), 2);
  EXPECT_EQ(data.size(), 50u);
  EXPECT_EQ(data.FeatureCardinality(2), 4);
  EXPECT_EQ(data.SensitiveFeatures(), std::vector<int>{2});
  EXPECT_EQ(data.PublicCandidateFeatures(), (std::vector<int>{0, 1}));
  EXPECT_EQ(data.FeatureIndex("f1"), 1);
}

TEST(DatasetTest, ClassPriorsSumToOne) {
  Rng rng(2);
  Dataset data = MakeToyDataset(200, rng);
  std::vector<double> priors = data.ClassPriors();
  EXPECT_NEAR(priors[0] + priors[1], 1.0, 1e-12);
  EXPECT_GT(priors[0], priors[1]);  // Label 1 needs f0=1 AND f2=2.
}

TEST(DatasetTest, SplitPreservesRows) {
  Rng rng(3);
  Dataset data = MakeToyDataset(100, rng);
  auto [a, b] = data.Split(0.7, rng);
  EXPECT_EQ(a.size(), 70u);
  EXPECT_EQ(b.size(), 30u);
}

TEST(DatasetTest, KFoldPartitionsEverything) {
  Rng rng(4);
  Dataset data = MakeToyDataset(103, rng);
  auto folds = data.KFoldIndices(5, rng);
  size_t total = 0;
  std::vector<bool> seen(103, false);
  for (const auto& fold : folds) {
    total += fold.size();
    for (size_t i : fold) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_EQ(total, 103u);
}

TEST(DatasetTest, AppendLabelAsFeatureRoundTrip) {
  Rng rng(19);
  Dataset data = MakeToyDataset(50, rng);
  Dataset extended = AppendLabelAsFeature(data, "outcome");
  EXPECT_EQ(extended.num_features(), data.num_features() + 1);
  EXPECT_EQ(extended.features().back().name, "outcome");
  EXPECT_EQ(extended.features().back().cardinality, data.num_classes());
  EXPECT_FALSE(extended.features().back().sensitive);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(extended.row(i).back(), data.label(i));
    EXPECT_EQ(extended.label(i), data.label(i));
  }
}

TEST(NaiveBayesTest, LearnsCrispPattern) {
  Rng rng(5);
  Dataset train = MakeToyDataset(2000, rng);
  NaiveBayes nb;
  nb.Train(train);
  // NB can't represent the conjunction exactly but should beat the prior.
  Dataset test = MakeToyDataset(500, rng);
  std::vector<int> preds, truth;
  for (size_t i = 0; i < test.size(); ++i) {
    preds.push_back(nb.Predict(test.row(i)));
    truth.push_back(test.label(i));
  }
  EXPECT_GT(Accuracy(preds, truth), 0.8);
}

TEST(NaiveBayesTest, LogScoresAreLogProbabilities) {
  Rng rng(6);
  Dataset train = MakeToyDataset(500, rng);
  NaiveBayes nb;
  nb.Train(train);
  std::vector<double> scores = nb.ClassLogScores({1, 0, 2});
  for (double s : scores) EXPECT_LT(s, 0.0);
  // Likelihoods per feature sum to 1 over values.
  for (int f = 0; f < 3; ++f) {
    int card = train.FeatureCardinality(f);
    for (int c = 0; c < 2; ++c) {
      double total = 0;
      for (int v = 0; v < card; ++v) total += std::exp(nb.log_likelihood(f, v, c));
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(NaiveBayesTest, FixedPointMatchesFloatArgmax) {
  Rng rng(7);
  Dataset train = MakeToyDataset(1000, rng);
  NaiveBayes nb;
  nb.Train(train);
  const int64_t scale = 1 << 10;
  auto fixed_priors = nb.FixedPriors(scale);
  auto fixed_lik = nb.FixedLikelihoods(scale);
  Dataset test = MakeToyDataset(300, rng);
  int disagreements = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& row = test.row(i);
    int64_t best_score = INT64_MIN;
    int best = -1;
    for (int c = 0; c < 2; ++c) {
      int64_t score = fixed_priors[c];
      for (int f = 0; f < 3; ++f) score += fixed_lik[f][row[f]][c];
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best != nb.Predict(row)) ++disagreements;
  }
  // Rounding can flip near-ties only.
  EXPECT_LE(disagreements, 3);
}

TEST(DecisionTreeTest, LearnsCrispPatternExactly) {
  Rng rng(8);
  Dataset train = MakeToyDataset(3000, rng);
  DecisionTree tree;
  tree.Train(train);
  Dataset test = MakeToyDataset(500, rng);
  std::vector<int> preds, truth;
  for (size_t i = 0; i < test.size(); ++i) {
    preds.push_back(tree.Predict(test.row(i)));
    truth.push_back(test.label(i));
  }
  EXPECT_GT(Accuracy(preds, truth), 0.97);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(9);
  Dataset train = MakeToyDataset(1000, rng);
  DecisionTree tree;
  TreeParams params;
  params.max_depth = 1;
  tree.Train(train, params);
  EXPECT_LE(tree.Depth(), 1);
}

TEST(DecisionTreeTest, SpecializePreservesPredictions) {
  Rng rng(10);
  Dataset train = GenerateWarfarinCohort(2000, rng);
  DecisionTree tree;
  tree.Train(train);

  // Disclose race and age; the specialized tree must agree with the full
  // tree on every row consistent with the disclosure.
  for (int race = 0; race < 4; ++race) {
    std::map<int, int> disclosed = {{WarfarinSchema::kRace, race},
                                    {WarfarinSchema::kAge, 5}};
    DecisionTree small = tree.Specialize(disclosed);
    EXPECT_LE(small.NumNodes(), tree.NumNodes());
    for (size_t i = 0; i < train.size(); ++i) {
      std::vector<int> row = train.row(i);
      row[WarfarinSchema::kRace] = race;
      row[WarfarinSchema::kAge] = 5;
      ASSERT_EQ(small.Predict(row), tree.Predict(row)) << "row " << i;
    }
  }
}

TEST(DecisionTreeTest, SpecializeOnAllUsedFeaturesYieldsLeaf) {
  Rng rng(11);
  Dataset train = MakeToyDataset(2000, rng);
  DecisionTree tree;
  tree.Train(train);
  std::map<int, int> all = {{0, 1}, {1, 0}, {2, 2}};
  DecisionTree leaf = tree.Specialize(all);
  EXPECT_EQ(leaf.NumNodes(), 1u);
  EXPECT_EQ(leaf.Predict({1, 0, 2}), tree.Predict({1, 0, 2}));
}

TEST(DecisionTreeTest, UsedFeaturesSubsetOfSchema) {
  Rng rng(12);
  Dataset train = GenerateWarfarinCohort(1500, rng);
  DecisionTree tree;
  tree.Train(train);
  for (int f : tree.UsedFeatures()) {
    EXPECT_GE(f, 0);
    EXPECT_LT(f, train.num_features());
  }
  EXPECT_FALSE(tree.UsedFeatures().empty());
}

TEST(LinearModelTest, LogisticLearnsSeparablePattern) {
  Rng rng(13);
  // Label directly determined by f0: linearly separable in one-hot space.
  std::vector<FeatureSpec> features = {{"f0", 2, false}, {"f1", 3, false}};
  Dataset data(features, 2);
  for (int i = 0; i < 800; ++i) {
    int f0 = rng.NextInt(0, 1);
    data.AddRow({f0, rng.NextInt(0, 2)}, f0);
  }
  LinearModel model;
  model.Train(data, LinearTrainParams());
  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    correct += model.Predict(data.row(i)) == data.label(i);
  }
  EXPECT_GT(correct / static_cast<double>(data.size()), 0.99);
}

TEST(LinearModelTest, HingeLossAlsoLearns) {
  Rng rng(14);
  Dataset train = GenerateWarfarinCohort(2000, rng);
  LinearTrainParams params;
  params.loss = LinearLoss::kHinge;
  LinearModel model;
  model.Train(train, params);
  Dataset test = GenerateWarfarinCohort(500, rng);
  std::vector<int> preds, truth;
  for (size_t i = 0; i < test.size(); ++i) {
    preds.push_back(model.Predict(test.row(i)));
    truth.push_back(test.label(i));
  }
  // Must clearly beat the majority baseline.
  std::vector<double> priors = test.ClassPriors();
  double majority = *std::max_element(priors.begin(), priors.end());
  EXPECT_GT(Accuracy(preds, truth), majority + 0.05);
}

TEST(LinearModelTest, OneHotLayout) {
  Rng rng(15);
  Dataset train = MakeToyDataset(100, rng);
  LinearModel model;
  model.Train(train, LinearTrainParams());
  EXPECT_EQ(model.dim(), 2 + 3 + 4);
  EXPECT_EQ(model.FeatureOffset(0), 0);
  EXPECT_EQ(model.FeatureOffset(1), 2);
  EXPECT_EQ(model.FeatureOffset(2), 5);
  EXPECT_EQ(model.FeatureCardinality(1), 3);
  EXPECT_EQ(model.FeatureCardinality(2), 4);
}

TEST(LinearModelTest, FixedPointPreservesArgmaxMostly) {
  Rng rng(16);
  Dataset train = GenerateWarfarinCohort(1500, rng);
  LinearModel model;
  model.Train(train, LinearTrainParams());
  const int64_t scale = 1 << 12;
  auto w = model.FixedWeights(scale);
  auto b = model.FixedBias(scale);
  Dataset test = GenerateWarfarinCohort(300, rng);
  int disagreements = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    const auto& row = test.row(i);
    int64_t best_score = INT64_MIN;
    int best = -1;
    for (int c = 0; c < 3; ++c) {
      int64_t score = b[c];
      for (int f = 0; f < test.num_features(); ++f) {
        score += w[c][model.FeatureOffset(f) + row[f]];
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best != model.Predict(row)) ++disagreements;
  }
  EXPECT_LE(disagreements, 5);
}

TEST(MetricsTest, AccuracyAndConfusion) {
  std::vector<int> pred = {0, 1, 1, 0, 2};
  std::vector<int> truth = {0, 1, 0, 0, 2};
  EXPECT_NEAR(Accuracy(pred, truth), 0.8, 1e-12);
  auto confusion = ConfusionMatrix(pred, truth, 3);
  EXPECT_EQ(confusion[0][0], 2);
  EXPECT_EQ(confusion[0][1], 1);
  EXPECT_EQ(confusion[1][1], 1);
  EXPECT_EQ(confusion[2][2], 1);
}

TEST(MetricsTest, MacroF1PerfectPrediction) {
  std::vector<int> v = {0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(MacroF1(v, v, 3), 1.0, 1e-12);
}

TEST(MetricsTest, CrossValidateRunsAllFolds) {
  Rng rng(17);
  Dataset data = MakeToyDataset(500, rng);
  DecisionTree tree;
  std::vector<double> accs = CrossValidate(
      data, 5, rng, [&](const Dataset& train) { tree.Train(train); },
      [&](const std::vector<int>& row) { return tree.Predict(row); });
  EXPECT_EQ(accs.size(), 5u);
  EXPECT_GT(Mean(accs), 0.9);
  EXPECT_GE(StdDev(accs), 0.0);
}

}  // namespace
}  // namespace pafs
