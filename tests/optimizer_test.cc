// Tests for the circuit optimizer: semantic equivalence on random inputs
// (the cardinal rule), plus targeted checks of each simplification.
#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "circuit/optimizer.h"
#include "data/warfarin_gen.h"
#include "ml/decision_tree.h"
#include "smc/secure_nb.h"
#include "smc/secure_tree.h"
#include "util/random.h"

namespace pafs {
namespace {

// Equivalence check over random (or exhaustive, when small) inputs.
void ExpectEquivalent(const Circuit& original, const Circuit& optimized,
                      int trials = 64) {
  ASSERT_EQ(original.garbler_inputs(), optimized.garbler_inputs());
  ASSERT_EQ(original.evaluator_inputs(), optimized.evaluator_inputs());
  ASSERT_EQ(original.outputs().size(), optimized.outputs().size());
  Rng rng(12345);
  uint32_t g = original.garbler_inputs();
  uint32_t e = original.evaluator_inputs();
  for (int t = 0; t < trials; ++t) {
    BitVec gb(g), eb(e);
    for (uint32_t i = 0; i < g; ++i) gb.Set(i, rng.NextBool());
    for (uint32_t i = 0; i < e; ++i) eb.Set(i, rng.NextBool());
    BitVec want = original.Evaluate(gb, eb);
    BitVec got = optimized.Evaluate(gb, eb);
    ASSERT_TRUE(want == got) << "trial " << t;
  }
}

TEST(OptimizerTest, AdderUnchangedSemantics) {
  CircuitBuilder b(8, 8);
  b.AddOutputWord(b.AddW(b.GarblerWord(0, 8), b.EvaluatorWord(0, 8)));
  Circuit c = b.Build();
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(c, &stats);
  ExpectEquivalent(c, opt);
  EXPECT_LE(stats.and_after, stats.and_before);
}

TEST(OptimizerTest, RemovesDuplicateSubexpressions) {
  CircuitBuilder b(0, 4);
  auto w = b.EvaluatorWord(0, 4);
  // The same equality test three times.
  b.AddOutput(b.EqualConst(w, 5));
  b.AddOutput(b.EqualConst(w, 5));
  b.AddOutput(b.Xor(b.EqualConst(w, 5), b.EvaluatorInput(0)));
  Circuit c = b.Build();
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(c, &stats);
  ExpectEquivalent(c, opt);
  // One copy of the 3-AND equality chain should survive.
  EXPECT_EQ(stats.and_after, 3u);
  EXPECT_EQ(stats.and_before, 9u);
}

TEST(OptimizerTest, FoldsConstants) {
  CircuitBuilder b(0, 2);
  auto x = b.EvaluatorInput(0);
  auto zero = b.ConstZero();
  auto one = b.ConstOne();
  b.AddOutput(b.And(x, zero));               // always 0
  b.AddOutput(b.And(x, one));                // x
  b.AddOutput(b.Xor(x, zero));               // x
  b.AddOutput(b.Xor(x, x));                  // 0
  b.AddOutput(b.And(x, b.Not(x)));           // 0
  Circuit c = b.Build();
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(c, &stats);
  ExpectEquivalent(c, opt);
  EXPECT_EQ(stats.and_after, 0u);
}

TEST(OptimizerTest, DoubleNegationCancels) {
  CircuitBuilder b(0, 1);
  b.AddOutput(b.Not(b.Not(b.EvaluatorInput(0))));
  Circuit c = b.Build();
  Circuit opt = OptimizeCircuit(c, nullptr);
  ExpectEquivalent(c, opt, 2);
  EXPECT_EQ(opt.gates().size(), 0u);  // Output is the input wire itself.
}

TEST(OptimizerTest, DeadGatesRemoved) {
  CircuitBuilder b(0, 4);
  auto w = b.EvaluatorWord(0, 4);
  auto dead = b.MulW(w, w);  // Large, never output.
  (void)dead;
  b.AddOutput(b.Xor(w[0], w[1]));
  Circuit c = b.Build();
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(c, &stats);
  ExpectEquivalent(c, opt);
  EXPECT_EQ(stats.and_after, 0u);
  EXPECT_GT(stats.and_before, 10u);
}

TEST(OptimizerTest, TreeCircuitShipsAlreadyOptimized) {
  // SecureTreeCircuit optimizes at construction (sibling paths repeat the
  // same feature==value tests), so a second pass must find nothing left.
  Rng rng(8);
  Dataset data = GenerateWarfarinCohort(2000, rng);
  DecisionTree tree;
  tree.Train(data);
  SecureTreeCircuit spec(tree, data.features(), data.num_classes(), {});
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(spec.circuit(), &stats);
  ExpectEquivalent(spec.circuit(), opt, 16);
  EXPECT_EQ(stats.and_after, stats.and_before);
}

TEST(OptimizerTest, NbCircuitStaysCorrect) {
  Rng rng(9);
  Dataset data = GenerateWarfarinCohort(600, rng);
  SecureNbCircuit spec(data.features(), data.num_classes(), {});
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(spec.circuit(), &stats);
  ExpectEquivalent(spec.circuit(), opt, 16);
  EXPECT_LE(stats.and_after, stats.and_before);
}

TEST(OptimizerTest, MuxTreeConstantTableCollapses) {
  // A mux tree over an all-equal table is a constant.
  CircuitBuilder b(0, 3);
  auto sel = b.EvaluatorWord(0, 3);
  std::vector<CircuitBuilder::Word> table(8, b.ConstantWord(11, 4));
  b.AddOutputWord(b.MuxTree(sel, table));
  Circuit c = b.Build();
  OptimizeStats stats;
  Circuit opt = OptimizeCircuit(c, &stats);
  ExpectEquivalent(c, opt);
  EXPECT_EQ(stats.and_after, 0u);
}

TEST(OptimizerTest, IdempotentSecondPass) {
  CircuitBuilder b(4, 4);
  b.AddOutputWord(b.MulW(b.GarblerWord(0, 4), b.EvaluatorWord(0, 4)));
  Circuit c = b.Build();
  OptimizeStats first, second;
  Circuit opt1 = OptimizeCircuit(c, &first);
  Circuit opt2 = OptimizeCircuit(opt1, &second);
  ExpectEquivalent(c, opt2);
  EXPECT_EQ(second.and_after, second.and_before);
}

}  // namespace
}  // namespace pafs
