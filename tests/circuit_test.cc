// Tests for the circuit IR and builder: every word-level construction is
// validated exhaustively or property-style against plain C++ semantics.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "circuit/circuit.h"
#include "util/bitvec.h"
#include "util/random.h"

namespace pafs {
namespace {

// Builds a circuit whose evaluator takes two w-bit words (garbler none)
// and exercises `body`; returns the outputs for concrete inputs.
template <typename Body>
uint64_t EvalBinaryOp(uint32_t width, uint64_t a, uint64_t b, Body body,
                      uint32_t out_width) {
  CircuitBuilder builder(0, 2 * width);
  auto wa = builder.EvaluatorWord(0, width);
  auto wb = builder.EvaluatorWord(width, width);
  body(builder, wa, wb);
  Circuit circuit = builder.Build();
  BitVec inputs(2 * width);
  for (uint32_t i = 0; i < width; ++i) {
    inputs.Set(i, (a >> i) & 1);
    inputs.Set(width + i, (b >> i) & 1);
  }
  BitVec out = circuit.Evaluate(BitVec(0), inputs);
  return out.ToU64(0, out_width);
}

TEST(CircuitBuilderTest, XorAndNotGates) {
  CircuitBuilder b(1, 1);
  auto x = b.GarblerInput(0);
  auto y = b.EvaluatorInput(0);
  b.AddOutput(b.Xor(x, y));
  b.AddOutput(b.And(x, y));
  b.AddOutput(b.Not(x));
  b.AddOutput(b.Or(x, y));
  Circuit c = b.Build();
  for (int xv = 0; xv < 2; ++xv) {
    for (int yv = 0; yv < 2; ++yv) {
      BitVec out = c.Evaluate(BitVec::FromU64(xv, 1), BitVec::FromU64(yv, 1));
      EXPECT_EQ(out.Get(0), xv != yv);
      EXPECT_EQ(out.Get(1), xv && yv);
      EXPECT_EQ(out.Get(2), !xv);
      EXPECT_EQ(out.Get(3), xv || yv);
    }
  }
}

TEST(CircuitBuilderTest, ConstantsEvaluate) {
  CircuitBuilder b(0, 1);
  b.AddOutput(b.ConstZero());
  b.AddOutput(b.ConstOne());
  b.AddOutputWord(b.ConstantWord(0b1011, 4));
  Circuit c = b.Build();
  for (int v = 0; v < 2; ++v) {
    BitVec out = c.Evaluate(BitVec(0), BitVec::FromU64(v, 1));
    EXPECT_FALSE(out.Get(0));
    EXPECT_TRUE(out.Get(1));
    EXPECT_EQ(out.ToU64(2, 4), 0b1011u);
  }
}

TEST(CircuitBuilderTest, AdditionExhaustive6Bit) {
  for (uint64_t a = 0; a < 64; a += 5) {
    for (uint64_t b = 0; b < 64; b += 3) {
      uint64_t got = EvalBinaryOp(
          6, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutputWord(bld.AddW(wa, wb));
          },
          6);
      EXPECT_EQ(got, (a + b) & 63) << a << "+" << b;
    }
  }
}

TEST(CircuitBuilderTest, SubtractionWraps) {
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = 0; b < 16; ++b) {
      uint64_t got = EvalBinaryOp(
          4, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutputWord(bld.SubW(wa, wb));
          },
          4);
      EXPECT_EQ(got, (a - b) & 15) << a << "-" << b;
    }
  }
}

TEST(CircuitBuilderTest, MultiplicationExhaustive4Bit) {
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t b = 0; b < 16; ++b) {
      uint64_t got = EvalBinaryOp(
          4, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutputWord(bld.MulW(wa, wb));
          },
          8);
      EXPECT_EQ(got, a * b) << a << "*" << b;
    }
  }
}

TEST(CircuitBuilderTest, NegationTwosComplement) {
  for (uint64_t a = 0; a < 16; ++a) {
    uint64_t got = EvalBinaryOp(
        4, a, 0,
        [](CircuitBuilder& bld, auto& wa, auto&) {
          bld.AddOutputWord(bld.NegW(wa));
        },
        4);
    EXPECT_EQ(got, (-a) & 15);
  }
}

TEST(CircuitBuilderTest, EqualityExhaustive) {
  for (uint64_t a = 0; a < 8; ++a) {
    for (uint64_t b = 0; b < 8; ++b) {
      uint64_t got = EvalBinaryOp(
          3, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutput(bld.Equal(wa, wb));
          },
          1);
      EXPECT_EQ(got, a == b ? 1u : 0u);
    }
  }
}

TEST(CircuitBuilderTest, EqualConstExhaustive) {
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t k = 0; k < 16; ++k) {
      uint64_t got = EvalBinaryOp(
          4, a, 0,
          [k](CircuitBuilder& bld, auto& wa, auto&) {
            bld.AddOutput(bld.EqualConst(wa, k));
          },
          1);
      EXPECT_EQ(got, a == k ? 1u : 0u) << a << " vs " << k;
    }
  }
}

TEST(CircuitBuilderTest, UnsignedComparisonExhaustive5Bit) {
  for (uint64_t a = 0; a < 32; a += 3) {
    for (uint64_t b = 0; b < 32; b += 2) {
      uint64_t got = EvalBinaryOp(
          5, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutput(bld.LessThanUnsigned(wa, wb));
          },
          1);
      EXPECT_EQ(got, a < b ? 1u : 0u) << a << " < " << b;
    }
  }
}

TEST(CircuitBuilderTest, SignedComparisonExhaustive5Bit) {
  auto to_signed = [](uint64_t v) {
    return v >= 16 ? static_cast<int64_t>(v) - 32 : static_cast<int64_t>(v);
  };
  for (uint64_t a = 0; a < 32; ++a) {
    for (uint64_t b = 0; b < 32; b += 3) {
      uint64_t got = EvalBinaryOp(
          5, a, b,
          [](CircuitBuilder& bld, auto& wa, auto& wb) {
            bld.AddOutput(bld.LessThanSigned(wa, wb));
          },
          1);
      EXPECT_EQ(got, to_signed(a) < to_signed(b) ? 1u : 0u)
          << to_signed(a) << " < " << to_signed(b);
    }
  }
}

TEST(CircuitBuilderTest, MuxSelects) {
  for (uint64_t sel = 0; sel < 2; ++sel) {
    uint64_t got = EvalBinaryOp(
        4, 0b1010, 0b0101,
        [sel](CircuitBuilder& bld, auto& wa, auto& wb) {
          auto s = sel ? bld.ConstOne() : bld.ConstZero();
          bld.AddOutputWord(bld.Mux(s, wa, wb));
        },
        4);
    EXPECT_EQ(got, sel ? 0b1010u : 0b0101u);
  }
}

TEST(CircuitBuilderTest, MuxTreePowerOfTwoTable) {
  // 4-entry table indexed by a 2-bit evaluator input.
  const std::vector<uint64_t> table = {5, 9, 12, 3};
  for (uint64_t idx = 0; idx < 4; ++idx) {
    CircuitBuilder b(0, 2);
    auto sel = b.EvaluatorWord(0, 2);
    std::vector<CircuitBuilder::Word> entries;
    for (uint64_t v : table) entries.push_back(b.ConstantWord(v, 4));
    b.AddOutputWord(b.MuxTree(sel, entries));
    Circuit c = b.Build();
    BitVec out = c.Evaluate(BitVec(0), BitVec::FromU64(idx, 2));
    EXPECT_EQ(out.ToU64(0, 4), table[idx]);
  }
}

TEST(CircuitBuilderTest, MuxTreeNonPowerOfTwoInRangeExact) {
  const std::vector<uint64_t> table = {7, 1, 4, 11, 9};  // 5 entries, 3 bits
  for (uint64_t idx = 0; idx < 8; ++idx) {
    CircuitBuilder b(0, 3);
    auto sel = b.EvaluatorWord(0, 3);
    std::vector<CircuitBuilder::Word> entries;
    for (uint64_t v : table) entries.push_back(b.ConstantWord(v, 4));
    b.AddOutputWord(b.MuxTree(sel, entries));
    Circuit c = b.Build();
    BitVec out = c.Evaluate(BitVec(0), BitVec::FromU64(idx, 3));
    uint64_t got = out.ToU64(0, 4);
    if (idx < table.size()) {
      EXPECT_EQ(got, table[idx]) << "index " << idx;
    } else {
      // Out-of-range selectors land on some entry (honest evaluators never
      // send them; feature values are below the cardinality).
      EXPECT_NE(std::find(table.begin(), table.end(), got), table.end());
    }
  }
}

TEST(CircuitBuilderTest, ArgMaxSignedFindsMaximum) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    int k = rng.NextInt(2, 6);
    std::vector<int64_t> values(k);
    for (auto& v : values) v = rng.NextInt(-15, 15);

    CircuitBuilder b(0, 1);
    std::vector<CircuitBuilder::Word> words;
    for (int64_t v : values) {
      words.push_back(b.ConstantWord(static_cast<uint64_t>(v) & 31, 5));
    }
    auto [index, max_val] = b.ArgMaxSigned(words);
    b.AddOutputWord(index);
    Circuit c = b.Build();
    BitVec out = c.Evaluate(BitVec(0), BitVec::FromU64(0, 1));
    size_t got = out.ToU64(0, index.size());

    int64_t best = values[0];
    size_t best_idx = 0;
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i] > best) {
        best = values[i];
        best_idx = i;
      }
    }
    EXPECT_EQ(got, best_idx);
  }
}

TEST(CircuitBuilderTest, SignExtendPreservesValue) {
  for (uint64_t a = 0; a < 16; ++a) {
    uint64_t got = EvalBinaryOp(
        4, a, 0,
        [](CircuitBuilder& bld, auto& wa, auto&) {
          bld.AddOutputWord(bld.SignExtend(wa, 8));
        },
        8);
    uint64_t expected = a < 8 ? a : (a | 0xF0);
    EXPECT_EQ(got, expected);
  }
}

TEST(CircuitStatsTest, CountsGateKinds) {
  CircuitBuilder b(0, 4);
  auto wa = b.EvaluatorWord(0, 2);
  auto wb = b.EvaluatorWord(2, 2);
  b.AddOutputWord(b.AddW(wa, wb));
  Circuit c = b.Build();
  CircuitStats stats = c.Stats();
  EXPECT_EQ(stats.and_gates, 1u);  // 2-bit ripple: carry only for bit 0.
  EXPECT_GT(stats.xor_gates, 0u);
}

TEST(CircuitTest, GarblerAndEvaluatorInputsSeparate) {
  CircuitBuilder b(2, 2);
  auto g = b.GarblerWord(0, 2);
  auto e = b.EvaluatorWord(0, 2);
  b.AddOutputWord(b.XorW(g, e));
  Circuit c = b.Build();
  BitVec out = c.Evaluate(BitVec::FromU64(0b01, 2), BitVec::FromU64(0b11, 2));
  EXPECT_EQ(out.ToU64(0, 2), 0b10u);
}

}  // namespace
}  // namespace pafs
