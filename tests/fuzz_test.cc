// Property/fuzz tests across the circuit and MPC layers: random circuits
// must evaluate identically under plaintext semantics, half-gates
// garbling, classic garbling, the optimizer, GMW, and circuit
// serialization round-trips. This is the strongest cross-cutting
// correctness net in the repository.
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "circuit/optimizer.h"
#include "circuit/serialize.h"
#include "gc/garble.h"
#include "net/channel.h"
#include "net/error.h"
#include "serve/model.h"
#include "sharing/gmw.h"
#include "util/random.h"

namespace pafs {
namespace {

// Generates a random circuit with mixed gate types, word ops, and muxes.
Circuit RandomCircuit(Rng& rng, uint32_t garbler_inputs,
                      uint32_t evaluator_inputs, int extra_ops) {
  CircuitBuilder b(garbler_inputs, evaluator_inputs);
  std::vector<uint32_t> wires;
  for (uint32_t i = 0; i < garbler_inputs; ++i) wires.push_back(b.GarblerInput(i));
  for (uint32_t i = 0; i < evaluator_inputs; ++i) {
    wires.push_back(b.EvaluatorInput(i));
  }
  auto pick = [&] { return wires[rng.NextU64Below(wires.size())]; };
  for (int op = 0; op < extra_ops; ++op) {
    switch (rng.NextU64Below(6)) {
      case 0:
        wires.push_back(b.Xor(pick(), pick()));
        break;
      case 1:
        wires.push_back(b.And(pick(), pick()));
        break;
      case 2:
        wires.push_back(b.Not(pick()));
        break;
      case 3:
        wires.push_back(b.Or(pick(), pick()));
        break;
      case 4: {
        CircuitBuilder::Word a = {pick(), pick(), pick()};
        CircuitBuilder::Word c = {pick(), pick(), pick()};
        for (uint32_t w : b.AddW(a, c)) wires.push_back(w);
        break;
      }
      case 5: {
        CircuitBuilder::Word t = {pick(), pick()};
        CircuitBuilder::Word f = {pick(), pick()};
        for (uint32_t w : b.Mux(pick(), t, f)) wires.push_back(w);
        break;
      }
    }
  }
  int num_outputs = 1 + static_cast<int>(rng.NextU64Below(8));
  for (int i = 0; i < num_outputs; ++i) b.AddOutput(pick());
  return b.Build();
}

BitVec RandomBits(Rng& rng, uint32_t n) {
  BitVec out(n);
  for (uint32_t i = 0; i < n; ++i) out.Set(i, rng.NextBool());
  return out;
}

BitVec GarbleEval(const Circuit& c, const BitVec& gb, const BitVec& eb,
                  uint64_t seed, bool classic) {
  Prg prg(Block(seed, ~seed));
  std::vector<Block> active;
  if (!classic) {
    GarbledCircuit gc = Garble(c, prg);
    for (uint32_t i = 0; i < c.garbler_inputs(); ++i) {
      active.push_back(gc.input_labels[i][gb.Get(i)]);
    }
    for (uint32_t i = 0; i < c.evaluator_inputs(); ++i) {
      active.push_back(gc.input_labels[c.garbler_inputs() + i][eb.Get(i)]);
    }
    return DecodeOutputs(EvaluateGarbled(c, gc.and_tables, active),
                         gc.output_decode);
  }
  ClassicGarbledCircuit gc = GarbleClassic(c, prg);
  for (uint32_t i = 0; i < c.garbler_inputs(); ++i) {
    active.push_back(gc.input_labels[i][gb.Get(i)]);
  }
  for (uint32_t i = 0; i < c.evaluator_inputs(); ++i) {
    active.push_back(gc.input_labels[c.garbler_inputs() + i][eb.Get(i)]);
  }
  return DecodeOutputs(EvaluateClassic(c, gc.and_tables, active),
                       gc.output_decode);
}

TEST(FuzzTest, GarblingAgreesWithPlaintextOnRandomCircuits) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 40; ++trial) {
    uint32_t g = 1 + rng.NextU64Below(6);
    uint32_t e = 1 + rng.NextU64Below(6);
    Circuit c = RandomCircuit(rng, g, e, 20 + trial);
    for (int input_trial = 0; input_trial < 4; ++input_trial) {
      BitVec gb = RandomBits(rng, g);
      BitVec eb = RandomBits(rng, e);
      BitVec want = c.Evaluate(gb, eb);
      ASSERT_TRUE(GarbleEval(c, gb, eb, trial * 7 + input_trial, false) ==
                  want)
          << "half-gates trial " << trial;
      ASSERT_TRUE(GarbleEval(c, gb, eb, trial * 11 + input_trial, true) ==
                  want)
          << "classic trial " << trial;
    }
  }
}

TEST(FuzzTest, OptimizerAgreesWithPlaintextOnRandomCircuits) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 60; ++trial) {
    uint32_t g = 1 + rng.NextU64Below(5);
    uint32_t e = 1 + rng.NextU64Below(5);
    Circuit c = RandomCircuit(rng, g, e, 30);
    OptimizeStats stats;
    Circuit opt = OptimizeCircuit(c, &stats);
    EXPECT_LE(stats.and_after, stats.and_before);
    for (int input_trial = 0; input_trial < 6; ++input_trial) {
      BitVec gb = RandomBits(rng, g);
      BitVec eb = RandomBits(rng, e);
      ASSERT_TRUE(opt.Evaluate(gb, eb) == c.Evaluate(gb, eb))
          << "trial " << trial;
    }
  }
}

TEST(FuzzTest, SerializationRoundTripsRandomCircuits) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    Circuit c = RandomCircuit(rng, 3, 3, 25);
    MemChannelPair channel;
    std::thread sender([&] { SendCircuit(channel.endpoint(0), c); });
    Circuit received = RecvCircuit(channel.endpoint(1));
    sender.join();
    ASSERT_EQ(received.num_wires(), c.num_wires());
    ASSERT_EQ(received.gates().size(), c.gates().size());
    BitVec gb = RandomBits(rng, 3);
    BitVec eb = RandomBits(rng, 3);
    ASSERT_TRUE(received.Evaluate(gb, eb) == c.Evaluate(gb, eb));
  }
}

TEST(FuzzTest, GmwAgreesWithPlaintextOnRandomCircuits) {
  MemChannelPair channel;
  GmwParty p0(0, channel.endpoint(0));
  GmwParty p1(1, channel.endpoint(1));
  Rng rng0(1), rng1(2);
  std::thread setup([&] { p0.Setup(rng0); });
  p1.Setup(rng1);
  setup.join();

  Rng rng(0xD1CE);
  for (int trial = 0; trial < 12; ++trial) {
    uint32_t g = 1 + rng.NextU64Below(4);
    uint32_t e = 1 + rng.NextU64Below(4);
    Circuit c = RandomCircuit(rng, g, e, 25);
    BitVec gb = RandomBits(rng, g);
    BitVec eb = RandomBits(rng, e);
    BitVec want = c.Evaluate(gb, eb);
    BitVec out0, out1;
    std::thread t([&] { out0 = p0.Evaluate(c, gb, rng0); });
    out1 = p1.Evaluate(c, eb, rng1);
    t.join();
    ASSERT_TRUE(out0 == want) << "trial " << trial;
    ASSERT_TRUE(out1 == want) << "trial " << trial;
  }
}

TEST(FuzzTest, OptimizedCircuitsRunOnGmw) {
  // Full composition on the sharing backend too.
  MemChannelPair channel;
  GmwParty p0(0, channel.endpoint(0));
  GmwParty p1(1, channel.endpoint(1));
  Rng rng0(3), rng1(4);
  std::thread setup([&] { p0.Setup(rng0); });
  p1.Setup(rng1);
  setup.join();
  Rng rng(0x5EED);
  for (int trial = 0; trial < 6; ++trial) {
    Circuit c = OptimizeCircuit(RandomCircuit(rng, 3, 3, 25), nullptr);
    BitVec gb = RandomBits(rng, 3);
    BitVec eb = RandomBits(rng, 3);
    BitVec want = c.Evaluate(gb, eb);
    BitVec out0, out1;
    std::thread t([&] { out0 = p0.Evaluate(c, gb, rng0); });
    out1 = p1.Evaluate(c, eb, rng1);
    t.join();
    ASSERT_TRUE(out0 == want);
    ASSERT_TRUE(out1 == want);
  }
}

// Single-threaded capture/replay channel for decoder fuzzing: Send
// records the encoder's bytes, Recv replays (possibly mangled) bytes to
// the decoder and fails typed when the stream runs dry — the in-memory
// analogue of a peer hanging up mid-handshake.
class ReplayChannel : public Channel {
 public:
  explicit ReplayChannel(std::vector<uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  void Send(const uint8_t* data, size_t n) override {
    bytes_.insert(bytes_.end(), data, data + n);
  }
  void Recv(uint8_t* data, size_t n) override {
    if (pos_ + n > bytes_.size()) {
      throw ChannelError(ChannelErrorKind::kClosed, "replay exhausted");
    }
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
  }
  const ChannelStats& stats() const override { return stats_; }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
  ChannelStats stats_;
};

serve::SessionSetup ReferenceSetup() {
  serve::SessionSetup setup;
  setup.classifier = ClassifierKind::kNaiveBayes;
  setup.scheme = GarblingScheme::kHalfGates;
  setup.paillier_bits = 512;
  setup.num_classes = 3;
  setup.features = {{"age", 4, false},
                    {"dose", 8, false},
                    {"vkorc1", 3, true},
                    {"cyp2c9", 6, true}};
  setup.plan_features = {0, 1};
  return setup;
}

TEST(FuzzTest, SessionSetupDecoderSurvivesTruncation) {
  // Every proper prefix of a valid handshake must fail typed: the decoder
  // sees a peer that died mid-setup, never an out-of-range index or hang.
  ReplayChannel encoder({});
  serve::SendSessionSetup(encoder, ReferenceSetup());
  const std::vector<uint8_t> valid = encoder.bytes();
  ASSERT_GT(valid.size(), 16u);

  for (size_t cut = 0; cut < valid.size(); ++cut) {
    ReplayChannel ch(
        std::vector<uint8_t>(valid.begin(), valid.begin() + cut));
    EXPECT_THROW(serve::RecvSessionSetup(ch), TransportError)
        << "prefix of " << cut << " bytes decoded";
  }
  // The untruncated stream still round-trips.
  ReplayChannel full(valid);
  serve::SessionSetup out = serve::RecvSessionSetup(full);
  EXPECT_EQ(out.features.size(), 4u);
  EXPECT_EQ(out.plan_features, std::vector<int>({0, 1}));
}

TEST(FuzzTest, SessionSetupDecoderSurvivesBitFlips) {
  ReplayChannel encoder({});
  serve::SendSessionSetup(encoder, ReferenceSetup());
  const std::vector<uint8_t> valid = encoder.bytes();

  Rng rng(0x5E55);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> mangled = valid;
    size_t bit = rng.NextU64Below(mangled.size() * 8);
    mangled[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ReplayChannel ch(std::move(mangled));
    try {
      serve::SessionSetup out = serve::RecvSessionSetup(ch);
      // A surviving flip (e.g. inside a feature name) must still satisfy
      // every decoder invariant the server relies on downstream.
      EXPECT_GE(out.num_classes, 2);
      for (int f : out.plan_features) {
        EXPECT_GE(f, 0);
        EXPECT_LT(f, static_cast<int>(out.features.size()));
      }
      for (const auto& spec : out.features) {
        EXPECT_GE(spec.cardinality, 1);
      }
    } catch (const TransportError&) {
      // Typed rejection: the expected fate of most flips.
    }
  }
}

TEST(FuzzTest, SessionSetupDecoderSurvivesRandomBytes) {
  Rng rng(0xD00F);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextU64Below(256));
    rng.FillBytes(junk.data(), junk.size());
    ReplayChannel ch(std::move(junk));
    try {
      serve::RecvSessionSetup(ch);
      // Astronomically unlikely but legal: random bytes that happen to
      // decode. The invariant is only "typed error or valid parse".
    } catch (const TransportError&) {
    }
  }
}

TEST(FuzzTest, ClientHelloDecoderSurvivesTruncation) {
  // v3 hellos carry a resumption ticket; a peer dying anywhere inside the
  // hello must surface typed, never as a hang or a bogus ticket.
  serve::ClientHello hello;
  hello.ticket.assign(serve::kResumeTicketBytes, 0x42);
  ReplayChannel encoder({});
  serve::SendClientHello(encoder, hello);
  const std::vector<uint8_t> valid = encoder.bytes();
  ASSERT_GT(valid.size(), serve::kResumeTicketBytes);

  for (size_t cut = 0; cut < valid.size(); ++cut) {
    ReplayChannel ch(
        std::vector<uint8_t>(valid.begin(), valid.begin() + cut));
    EXPECT_THROW(serve::RecvClientHello(ch), TransportError)
        << "prefix of " << cut << " bytes decoded";
  }
  ReplayChannel full(valid);
  serve::ClientHello out = serve::RecvClientHello(full);
  EXPECT_EQ(out.ticket, hello.ticket);
}

TEST(FuzzTest, ClientHelloDecoderSurvivesBitFlipsAndForgedTickets) {
  serve::ClientHello hello;
  hello.ticket.assign(serve::kResumeTicketBytes, 0x42);
  ReplayChannel encoder({});
  serve::SendClientHello(encoder, hello);
  const std::vector<uint8_t> valid = encoder.bytes();

  Rng rng(0x7E57);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<uint8_t> mangled = valid;
    size_t bit = rng.NextU64Below(mangled.size() * 8);
    mangled[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ReplayChannel ch(std::move(mangled));
    try {
      serve::ClientHello out = serve::RecvClientHello(ch);
      // A flip inside the ticket body decodes fine — it is a *forged*
      // ticket, and rejecting forgeries is the resume cache's job (a
      // lookup miss), not the decoder's. The decoder's invariant is only
      // that a parsed ticket has the exact width.
      EXPECT_TRUE(out.ticket.empty() ||
                  out.ticket.size() == serve::kResumeTicketBytes);
    } catch (const TransportError&) {
      // Typed rejection: flips in magic, version, or the length word.
    }
  }
}

TEST(FuzzTest, ClientHelloDecoderSurvivesRandomBytes) {
  Rng rng(0xF8E5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.NextU64Below(128));
    rng.FillBytes(junk.data(), junk.size());
    ReplayChannel ch(std::move(junk));
    try {
      serve::RecvClientHello(ch);
    } catch (const TransportError&) {
    }
  }
}

TEST(FuzzTest, TicketFrameDecoderSurvivesMangling) {
  // The server->client ticket frame: empty (resumption disabled) or
  // exactly kResumeTicketBytes. Truncations, flips, and junk must all end
  // typed or as a frame that still satisfies that width invariant.
  ReplayChannel encoder({});
  encoder.SendBytes(std::vector<uint8_t>(serve::kResumeTicketBytes, 0x6B));
  const std::vector<uint8_t> valid = encoder.bytes();

  for (size_t cut = 0; cut < valid.size(); ++cut) {
    ReplayChannel ch(
        std::vector<uint8_t>(valid.begin(), valid.begin() + cut));
    EXPECT_THROW(serve::RecvTicketFrame(ch), TransportError)
        << "prefix of " << cut << " bytes decoded";
  }

  Rng rng(0x71CC);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mangled = valid;
    size_t bit = rng.NextU64Below(mangled.size() * 8);
    mangled[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    ReplayChannel ch(std::move(mangled));
    try {
      std::vector<uint8_t> ticket = serve::RecvTicketFrame(ch);
      EXPECT_TRUE(ticket.empty() ||
                  ticket.size() == serve::kResumeTicketBytes);
    } catch (const TransportError&) {
    }
  }

  // The disabled-resumption frame (empty payload) round-trips too.
  ReplayChannel disabled({});
  disabled.SendBytes(std::vector<uint8_t>{});
  ReplayChannel decode(disabled.bytes());
  EXPECT_TRUE(serve::RecvTicketFrame(decode).empty());
}

TEST(FuzzTest, OptimizedCircuitsGarbleCorrectly) {
  // The composition used in production: build -> optimize -> garble.
  Rng rng(0xABCD);
  for (int trial = 0; trial < 20; ++trial) {
    uint32_t g = 1 + rng.NextU64Below(4);
    uint32_t e = 1 + rng.NextU64Below(4);
    Circuit c = OptimizeCircuit(RandomCircuit(rng, g, e, 30), nullptr);
    BitVec gb = RandomBits(rng, g);
    BitVec eb = RandomBits(rng, e);
    ASSERT_TRUE(GarbleEval(c, gb, eb, trial, false) == c.Evaluate(gb, eb));
  }
}

}  // namespace
}  // namespace pafs
