// Tests for the network substrate: framing helpers, byte/round accounting,
// blocking semantics across threads, the cost model, and the real socket
// transport (TCP + Unix-domain) that mirrors the in-memory semantics.
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "net/channel.h"
#include "net/fault.h"
#include "net/framing.h"
#include "net/socket.h"
#include "net/throttle.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace pafs {
namespace {

TEST(MemChannelTest, RoundTripPrimitives) {
  MemChannelPair pair;
  Channel& a = pair.endpoint(0);
  Channel& b = pair.endpoint(1);

  a.SendU64(0xDEADBEEFull);
  EXPECT_EQ(b.RecvU64(), 0xDEADBEEFull);

  Block blk(123, 456);
  a.SendBlock(blk);
  EXPECT_EQ(b.RecvBlock(), blk);

  std::vector<Block> blocks = {Block(1, 2), Block(3, 4), Block(5, 6)};
  a.SendBlocks(blocks);
  EXPECT_EQ(b.RecvBlocks(), blocks);

  BigInt big = BigInt::FromDecimal("123456789012345678901234567890");
  a.SendBigInt(big);
  EXPECT_EQ(b.RecvBigInt(), big);

  std::vector<uint8_t> bytes = {9, 8, 7};
  a.SendBytes(bytes);
  EXPECT_EQ(b.RecvBytes(), bytes);

  std::vector<uint8_t> empty;
  a.SendBytes(empty);
  EXPECT_EQ(b.RecvBytes(), empty);
}

TEST(MemChannelTest, DuplexTraffic) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(1);
  pair.endpoint(1).SendU64(2);
  EXPECT_EQ(pair.endpoint(1).RecvU64(), 1u);
  EXPECT_EQ(pair.endpoint(0).RecvU64(), 2u);
}

TEST(MemChannelTest, CountsBytes) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(7);  // 8 bytes
  pair.endpoint(1).RecvU64();
  pair.endpoint(1).SendBlock(Block());  // 16 bytes
  pair.endpoint(0).RecvBlock();
  EXPECT_EQ(pair.TotalBytes(), 24u);
  EXPECT_EQ(pair.endpoint(0).stats().bytes_sent, 8u);
  EXPECT_EQ(pair.endpoint(1).stats().bytes_sent, 16u);
}

TEST(MemChannelTest, CountsDirectionFlips) {
  MemChannelPair pair;
  Channel& a = pair.endpoint(0);
  Channel& b = pair.endpoint(1);
  // a->b, b->a, a->b: a's opening send is free, then each direction change
  // costs one flip — and the two endpoints agree on the count.
  a.SendU64(1);
  b.RecvU64();
  b.SendU64(2);
  a.RecvU64();
  a.SendU64(3);
  b.RecvU64();
  EXPECT_EQ(pair.TotalRounds(), 2u);
  EXPECT_EQ(a.stats().direction_flips, 1u);
  EXPECT_EQ(b.stats().direction_flips, 1u);
}

TEST(MemChannelTest, EndpointFlipCountsStayInParity) {
  // Direction changes alternate between the endpoints (the responder owns
  // change 1, the opener change 2, ...), so the two counters never drift
  // more than one apart and always sum to the wire's total turn changes.
  MemChannelPair pair;
  Channel& a = pair.endpoint(0);
  Channel& b = pair.endpoint(1);
  for (uint64_t round = 0; round < 5; ++round) {
    a.SendU64(round);
    a.SendU64(round);  // Bursts within one turn never flip.
    b.RecvU64();
    b.RecvU64();
    b.SendU64(round);
    a.RecvU64();
  }
  EXPECT_EQ(a.stats().direction_flips, 4u);
  EXPECT_EQ(b.stats().direction_flips, 5u);
  EXPECT_EQ(pair.TotalRounds(), 9u);
  EXPECT_LE(b.stats().direction_flips - a.stats().direction_flips, 1u);
}

TEST(MemChannelTest, FirstSendIsNotAFlip) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(1);
  pair.endpoint(1).RecvU64();
  EXPECT_EQ(pair.TotalRounds(), 0u);
  // Reset returns the endpoint to the fresh state: the next send opens a
  // new conversation instead of flipping against stale history.
  pair.ResetStats();
  pair.endpoint(1).SendU64(2);
  pair.endpoint(0).RecvU64();
  EXPECT_EQ(pair.TotalRounds(), 0u);
}

TEST(MemChannelTest, ResetClearsStats) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(7);
  pair.endpoint(1).RecvU64();
  pair.ResetStats();
  EXPECT_EQ(pair.TotalBytes(), 0u);
  EXPECT_EQ(pair.TotalRounds(), 0u);
}

TEST(MemChannelTest, RecvBlocksUntilDataArrives) {
  MemChannelPair pair;
  uint64_t got = 0;
  std::thread reader([&] { got = pair.endpoint(1).RecvU64(); });
  // Give the reader a chance to block, then satisfy it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.endpoint(0).SendU64(99);
  reader.join();
  EXPECT_EQ(got, 99u);
}

TEST(NetworkProfileTest, TransferTimeComposition) {
  NetworkProfile lan = LanProfile();
  // Pure-bandwidth component.
  EXPECT_NEAR(lan.TransferSeconds(125000000, 0), 1.0, 1e-9);
  // Pure-latency component: each round costs half an RTT.
  EXPECT_NEAR(lan.TransferSeconds(0, 10), 10 * lan.rtt_seconds / 2, 1e-12);
  // WAN is strictly slower for the same traffic.
  NetworkProfile wan = WanProfile();
  EXPECT_GT(wan.TransferSeconds(1000000, 4), lan.TransferSeconds(1000000, 4));
}

TEST(ThrottledChannelTest, PreservesData) {
  MemChannelPair pair;
  NetworkProfile fast{"fast", 1e9, 0.0};
  ThrottledChannel a(pair.endpoint(0), fast);
  ThrottledChannel b(pair.endpoint(1), fast);
  a.SendU64(777);
  EXPECT_EQ(b.RecvU64(), 777u);
  Block blk(5, 6);
  b.SendBlock(blk);
  EXPECT_EQ(a.RecvBlock(), blk);
}

TEST(ThrottledChannelTest, EmulatesBandwidthDelay) {
  MemChannelPair pair;
  // 1 MB/s, no latency: 100 KB should take ~100 ms (scaled 10x -> ~10 ms).
  NetworkProfile slow{"slow", 1e6, 0.0};
  ThrottledChannel a(pair.endpoint(0), slow, /*time_scale=*/10.0);
  std::vector<uint8_t> payload(100000, 7);
  Timer timer;
  a.SendBytes(payload);
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.008);
  EXPECT_NEAR(a.emulated_delay_seconds() * 10.0, 0.1, 0.01);
}

TEST(ThrottledChannelTest, ChargesHalfRttPerFlip) {
  MemChannelPair pair;
  NetworkProfile laggy{"laggy", 1e12, 0.020};  // 20 ms RTT, no bandwidth.
  ThrottledChannel a(pair.endpoint(0), laggy, /*time_scale=*/1.0);
  ThrottledChannel b(pair.endpoint(1), laggy, /*time_scale=*/1.0);
  // a: opening send (free), recv, send (flip). b: recv, send (flip), recv.
  a.SendU64(1);
  b.RecvU64();
  b.SendU64(2);
  a.RecvU64();
  a.SendU64(3);
  b.RecvU64();
  EXPECT_NEAR(a.emulated_delay_seconds(), 0.010, 1e-3);  // One flip on a.
  EXPECT_NEAR(b.emulated_delay_seconds(), 0.010, 1e-3);  // One flip on b.
}

TEST(ThrottledChannelTest, WallClockMatchesAnalyticEstimate) {
  // End-to-end check that the emulation agrees with the cost model: a
  // ping-pong exchange over throttled endpoints should take (up to sleep
  // granularity) NetworkProfile::TransferSeconds of the observed traffic.
  MemChannelPair pair;
  NetworkProfile profile{"test-link", 2e6, 0.004};  // 2 MB/s, 4 ms RTT.
  ThrottledChannel a(pair.endpoint(0), profile);
  ThrottledChannel b(pair.endpoint(1), profile);

  std::vector<uint8_t> payload(4000, 0xAB);
  Timer timer;
  std::thread peer([&] {
    for (int i = 0; i < 8; ++i) {
      b.RecvBytes();
      b.SendBytes(payload);
    }
  });
  for (int i = 0; i < 8; ++i) {
    a.SendBytes(payload);
    a.RecvBytes();
  }
  peer.join();
  double wall = timer.ElapsedSeconds();

  double estimate =
      profile.TransferSeconds(pair.TotalBytes(), pair.TotalRounds());
  // The sleeps themselves are exactly the analytic delays, so the two
  // endpoints' totals must reconstruct the estimate almost exactly.
  EXPECT_NEAR(a.emulated_delay_seconds() + b.emulated_delay_seconds(),
              estimate, 0.05 * estimate);
  // Wall-clock adds scheduler overshoot per sleep; the exchange is strictly
  // half-duplex, so it can never beat the estimate.
  EXPECT_GE(wall, 0.95 * estimate);
  EXPECT_LE(wall, 1.5 * estimate + 0.02);
}

TEST(ThrottledChannelTest, SurfacesEmulatedDelayAsSpanAttribute) {
  PafsTelemetry::Reset();
  PafsTelemetry::Enable();
  obs::SetThreadParty("throttle-test");

  MemChannelPair pair;
  NetworkProfile slow{"slow", 1e6, 0.010};  // 1 MB/s, 10 ms RTT.
  ThrottledChannel a(pair.endpoint(0), slow, /*time_scale=*/100.0);
  std::vector<uint8_t> payload(50000, 1);
  {
    obs::TraceSpan span("throttled.send");
    a.SendBytes(payload);
  }
  PafsTelemetry::Disable();

  // The span must carry the channel's accumulated sleep so phase
  // aggregators can separate link time from compute.
  double attr = -1;
  obs::ForEachParty([&](const std::string& party,
                        const std::vector<const obs::PhaseNode*>& roots) {
    if (party != "throttle-test") return;
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0]->name, "throttled.send");
    auto it = roots[0]->attrs.find("emulated_delay_seconds");
    ASSERT_NE(it, roots[0]->attrs.end());
    attr = it->second;
  });
  EXPECT_NEAR(attr, a.emulated_delay_seconds(), 1e-12);
  // 50 KB at 1 MB/s, scaled 100x; the opening send pays no half-RTT.
  EXPECT_NEAR(attr, 0.0005, 0.0001);
  PafsTelemetry::Reset();
}

TEST(ChannelLifecycleTest, CloseUnblocksBlockedRecv) {
  MemChannelPair pair;
  std::exception_ptr error;
  std::thread reader([&] {
    try {
      pair.endpoint(1).RecvU64();
    } catch (...) {
      error = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.Close();
  reader.join();
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kClosed);
  }
}

TEST(ChannelLifecycleTest, SendOnClosedChannelThrows) {
  MemChannelPair pair;
  pair.Close();
  EXPECT_TRUE(pair.closed());
  EXPECT_THROW(pair.endpoint(0).SendU64(1), ChannelError);
  EXPECT_THROW(pair.endpoint(1).SendU64(1), ChannelError);
}

TEST(ChannelLifecycleTest, RecvDrainsBufferedBytesBeforeFailingClosed) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(42);
  pair.Close();
  // Bytes delivered before the shutdown stay readable (half-closed
  // socket semantics); only the next starved read fails.
  EXPECT_EQ(pair.endpoint(1).RecvU64(), 42u);
  EXPECT_THROW(pair.endpoint(1).RecvU64(), ChannelError);
}

TEST(ChannelLifecycleTest, RecvDeadlineThrowsTimeout) {
  MemChannelPair pair;
  pair.endpoint(1).set_recv_timeout_seconds(0.02);
  Timer timer;
  try {
    pair.endpoint(1).RecvU64();
    FAIL() << "expected ChannelError";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
  }
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  // A satisfied Recv under the same deadline still works.
  pair.endpoint(0).SendU64(5);
  EXPECT_EQ(pair.endpoint(1).RecvU64(), 5u);
}

TEST(WireHardeningTest, OversizeLengthPrefixRejected) {
  MemChannelPair pair;
  // A corrupt length prefix claiming ~2^60 bytes must be rejected before
  // any allocation, with the payload never consumed.
  pair.endpoint(0).SendU64(1ull << 60);
  EXPECT_THROW(pair.endpoint(1).RecvBytes(), ProtocolError);
  pair.endpoint(0).SendU64(1ull << 60);
  EXPECT_THROW(pair.endpoint(1).RecvBlocks(), ProtocolError);
}

TEST(WireHardeningTest, CustomCapApplies) {
  MemChannelPair pair;
  pair.endpoint(1).set_max_message_bytes(16);
  std::vector<uint8_t> small(16, 1);
  pair.endpoint(0).SendBytes(small);
  EXPECT_EQ(pair.endpoint(1).RecvBytes(), small);
  std::vector<uint8_t> big(17, 1);
  pair.endpoint(0).SendBytes(big);
  EXPECT_THROW(pair.endpoint(1).RecvBytes(), ProtocolError);
}

TEST(WireHardeningTest, ExpectedSizeMismatchRejected) {
  // A rejected prefix leaves the payload unread (the error is raised
  // before any payload byte is consumed), so each case gets a fresh pair.
  {
    MemChannelPair pair;
    pair.endpoint(0).SendBytes(std::vector<uint8_t>(10, 2));
    EXPECT_THROW(pair.endpoint(1).RecvBytesExpected(11), ProtocolError);
  }
  {
    MemChannelPair pair;
    pair.endpoint(0).SendBlocks(std::vector<Block>(3));
    EXPECT_THROW(pair.endpoint(1).RecvBlocksExpected(4), ProtocolError);
  }
  // Matching sizes pass through untouched.
  MemChannelPair pair;
  std::vector<Block> blocks = {Block(7, 8), Block(9, 10)};
  pair.endpoint(0).SendBlocks(blocks);
  EXPECT_EQ(pair.endpoint(1).RecvBlocksExpected(2), blocks);
}

TEST(FramedChannelTest, RoundTripsThroughFraming) {
  MemChannelPair pair;
  FramedChannel a(pair.endpoint(0));
  FramedChannel b(pair.endpoint(1));
  a.SendU64(123);
  EXPECT_EQ(b.RecvU64(), 123u);
  std::vector<uint8_t> payload(1000, 0x5C);
  b.SendBytes(payload);
  EXPECT_EQ(a.RecvBytes(), payload);
  // Partial reads across frame boundaries reassemble correctly.
  a.SendU64(1);
  a.SendU64(2);
  EXPECT_EQ(b.RecvU64(), 1u);
  EXPECT_EQ(b.RecvU64(), 2u);
}

TEST(FramedChannelTest, DetectsCorruption) {
  MemChannelPair pair;
  FaultPlan plan;
  plan.kind = FaultKind::kCorrupt;
  plan.seed = 11;
  plan.first_op = 1;  // Corrupt the payload frame, not the u64 prefix.
  plan.max_faults = 1;
  FaultInjector injector(plan);
  FaultInjectingChannel faulty(pair.endpoint(0), injector);
  FramedChannel a(faulty);
  FramedChannel b(pair.endpoint(1));
  pair.endpoint(1).set_recv_timeout_seconds(0.2);  // Hang guard.
  // Large payload so the seeded bit flips land in the body, not the
  // 8-byte frame header: the CRC check must reject the frame.
  std::vector<uint8_t> payload(4096, 0x3A);
  a.SendBytes(payload);
  EXPECT_THROW(b.RecvBytes(), ProtocolError);
  EXPECT_EQ(injector.injected(), 1u);
  // The budget is spent: the next frame arrives intact.
  a.SendU64(0xABCDEF);
  EXPECT_EQ(b.RecvU64(), 0xABCDEFu);
}

TEST(FaultInjectorTest, DeterministicSchedule) {
  FaultPlan plan;
  plan.kind = FaultKind::kDrop;
  plan.seed = 99;
  plan.probability = 0.5;
  plan.max_faults = 0;  // Unlimited.
  // Same seed, same schedule — op-for-op.
  FaultInjector x(plan), y(plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(x.NextSendFault(64), y.NextSendFault(64)) << "op " << i;
  }
  EXPECT_EQ(x.injected(), y.injected());
  EXPECT_GT(x.injected(), 0u);
}

TEST(FaultInjectorTest, HonorsFirstOpAndBudget) {
  FaultPlan plan;
  plan.kind = FaultKind::kDrop;
  plan.seed = 7;
  plan.probability = 1.0;
  plan.first_op = 3;
  plan.max_faults = 2;
  FaultInjector injector(plan);
  std::vector<FaultKind> got;
  for (int i = 0; i < 8; ++i) got.push_back(injector.NextSendFault(64));
  // Ops 0-2 are protected, ops 3-4 fire, then the budget is exhausted.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], FaultKind::kNone);
  EXPECT_EQ(got[3], FaultKind::kDrop);
  EXPECT_EQ(got[4], FaultKind::kDrop);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(got[i], FaultKind::kNone);
  EXPECT_EQ(injector.injected(), 2u);
}

TEST(FaultInjectorTest, TargetLenFiresOnlyOnMatchingSends) {
  FaultPlan plan;
  plan.kind = FaultKind::kDrop;
  plan.seed = 7;
  plan.probability = 1.0;
  plan.max_faults = 1;
  plan.target_len = 40;  // The v3 resumption-ticket frame size.
  FaultInjector injector(plan);
  // Non-matching sends never fault and never spend the budget.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.NextSendFault(16), FaultKind::kNone);
  }
  EXPECT_EQ(injector.injected(), 0u);
  EXPECT_EQ(injector.NextSendFault(40), FaultKind::kDrop);
  EXPECT_EQ(injector.injected(), 1u);
  // Budget spent: even matching sends pass through now.
  EXPECT_EQ(injector.NextSendFault(40), FaultKind::kNone);
}

// ---------------------------------------------------------------------------
// Real socket transport. Every test runs on loopback (TCP ephemeral port)
// or a per-process UDS path, so suites can run in parallel.

std::string UdsPath(const char* tag) {
  return "/tmp/pafs_net_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct ConnectedSockets {
  std::unique_ptr<SocketChannel> server;
  std::unique_ptr<SocketChannel> client;
};

ConnectedSockets MakeConnectedPair(const SocketAddress& address) {
  SocketListener listener = SocketListener::Listen(address);
  ConnectedSockets pair;
  std::thread connector(
      [&] { pair.client = SocketConnect(listener.local_address(), 2.0); });
  pair.server = listener.Accept(2.0);
  connector.join();
  EXPECT_NE(pair.server, nullptr);
  EXPECT_NE(pair.client, nullptr);
  return pair;
}

TEST(SocketAddressTest, ParseRoundTrips) {
  auto tcp = SocketAddress::Parse("tcp:127.0.0.1:9000");
  ASSERT_TRUE(tcp.ok()) << tcp.status().message();
  EXPECT_EQ(tcp.value().family, SocketAddress::Family::kTcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 9000);
  EXPECT_EQ(tcp.value().ToString(), "tcp:127.0.0.1:9000");

  auto uds = SocketAddress::Parse("unix:/tmp/pafs.sock");
  ASSERT_TRUE(uds.ok());
  EXPECT_EQ(uds.value().family, SocketAddress::Family::kUnix);
  EXPECT_EQ(uds.value().path, "/tmp/pafs.sock");
  EXPECT_EQ(uds.value().ToString(), "unix:/tmp/pafs.sock");

  EXPECT_FALSE(SocketAddress::Parse("tcp:nohost").ok());
  EXPECT_FALSE(SocketAddress::Parse("tcp:1.2.3.4:notaport").ok());
  EXPECT_FALSE(SocketAddress::Parse("tcp:1.2.3.4:70000").ok());
  EXPECT_FALSE(SocketAddress::Parse("carrier-pigeon:coop").ok());
  EXPECT_FALSE(SocketAddress::Parse("unix:").ok());
}

class SocketChannelTest : public ::testing::TestWithParam<bool> {
 protected:
  SocketAddress Address(const char* tag) const {
    return GetParam() ? SocketAddress::Unix(UdsPath(tag))
                      : SocketAddress::Tcp("127.0.0.1", 0);
  }
};

TEST_P(SocketChannelTest, RoundTripPrimitivesAndStats) {
  ConnectedSockets pair = MakeConnectedPair(Address("roundtrip"));
  Channel& a = *pair.client;
  Channel& b = *pair.server;

  a.SendU64(0xFEEDFACEull);
  EXPECT_EQ(b.RecvU64(), 0xFEEDFACEull);
  b.SendU64(7);
  EXPECT_EQ(a.RecvU64(), 7u);

  std::vector<Block> blocks = {Block(1, 2), Block(3, 4)};
  a.SendBlocks(blocks);
  EXPECT_EQ(b.RecvBlocks(), blocks);

  std::vector<uint8_t> bytes = {5, 4, 3, 2, 1};
  b.SendBytes(bytes);
  EXPECT_EQ(a.RecvBytes(), bytes);

  // Both directions counted, and the half-duplex flip accounting matches
  // the in-memory channel's convention (opening send is free).
  EXPECT_GT(a.stats().bytes_sent, 0u);
  EXPECT_GT(a.stats().bytes_received, 0u);
  EXPECT_EQ(a.stats().bytes_sent, b.stats().bytes_received);
  EXPECT_EQ(b.stats().bytes_sent, a.stats().bytes_received);
  EXPECT_EQ(a.stats().direction_flips + b.stats().direction_flips, 3u);
}

TEST_P(SocketChannelTest, LargeTransferLoopsPartialIo) {
  // Well past any kernel socket buffer: Send must loop over partial
  // writes while the peer drains, and Recv must reassemble exactly.
  ConnectedSockets pair = MakeConnectedPair(Address("large"));
  std::vector<uint8_t> payload(8 << 20);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 2654435761u >> 24);
  }
  std::thread sender([&] { pair.client->SendBytes(payload); });
  std::vector<uint8_t> got = pair.server->RecvBytes();
  sender.join();
  EXPECT_EQ(got, payload);
}

TEST_P(SocketChannelTest, RecvDeadlineThrowsTimeout) {
  ConnectedSockets pair = MakeConnectedPair(Address("deadline"));
  pair.server->set_recv_timeout_seconds(0.05);
  Timer timer;
  try {
    pair.server->RecvU64();
    FAIL() << "expected ChannelError";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
  }
  EXPECT_GE(timer.ElapsedSeconds(), 0.04);
  // The channel survives a timeout; a satisfied Recv still works.
  pair.client->SendU64(11);
  EXPECT_EQ(pair.server->RecvU64(), 11u);
}

TEST_P(SocketChannelTest, SendToStalledPeerTimesOut) {
  // A peer that never reads eventually fills both kernel buffers; the
  // blocked Send must fail typed instead of wedging the worker.
  ConnectedSockets pair = MakeConnectedPair(Address("stall"));
  pair.client->set_recv_timeout_seconds(0.1);
  std::vector<uint8_t> payload(64 << 20, 0x77);
  EXPECT_THROW(pair.client->SendBytes(payload), ChannelError);
}

TEST_P(SocketChannelTest, CrossThreadCloseUnblocksRecv) {
  ConnectedSockets pair = MakeConnectedPair(Address("close"));
  std::exception_ptr error;
  std::thread reader([&] {
    try {
      pair.server->RecvU64();
    } catch (...) {
      error = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pair.server->Close();  // Supervisor idiom: close from another thread.
  reader.join();
  ASSERT_NE(error, nullptr);
  try {
    std::rethrow_exception(error);
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kClosed);
  }
}

TEST_P(SocketChannelTest, PeerCloseDrainsBufferedBytesThenFailsClosed) {
  ConnectedSockets pair = MakeConnectedPair(Address("drain"));
  pair.client->SendU64(42);
  pair.client->Close();
  pair.server->set_recv_timeout_seconds(1.0);
  // Half-closed-socket semantics: delivered bytes stay readable, the
  // starved read after them fails kClosed (not kTimeout).
  EXPECT_EQ(pair.server->RecvU64(), 42u);
  try {
    pair.server->RecvU64();
    FAIL() << "expected ChannelError";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kClosed);
  }
}

TEST_P(SocketChannelTest, FramedChannelComposesOverTheWire) {
  ConnectedSockets pair = MakeConnectedPair(Address("framed"));
  FramedChannel a(*pair.client);
  FramedChannel b(*pair.server);
  a.SendU64(321);
  EXPECT_EQ(b.RecvU64(), 321u);
  std::vector<uint8_t> payload(100000, 0xC3);
  b.SendBytes(payload);
  EXPECT_EQ(a.RecvBytes(), payload);
}

INSTANTIATE_TEST_SUITE_P(Families, SocketChannelTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? std::string("Unix")
                                             : std::string("Tcp");
                         });

TEST(SocketListenerTest, AcceptTimeoutReturnsNull) {
  SocketListener listener =
      SocketListener::Listen(SocketAddress::Tcp("127.0.0.1", 0));
  Timer timer;
  EXPECT_EQ(listener.Accept(0.05), nullptr);
  EXPECT_GE(timer.ElapsedSeconds(), 0.04);
  EXPECT_EQ(listener.TryAccept(), nullptr);
}

TEST(SocketListenerTest, CloseUnblocksAccept) {
  SocketListener listener =
      SocketListener::Listen(SocketAddress::Tcp("127.0.0.1", 0));
  std::exception_ptr error;
  std::thread acceptor([&] {
    try {
      listener.Accept(5.0);
    } catch (...) {
      error = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.Close();
  acceptor.join();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), ChannelError);
}

TEST(SocketListenerTest, UnixListenerReplacesStaleSocketFile) {
  std::string path = UdsPath("stale");
  {
    SocketListener first = SocketListener::Listen(SocketAddress::Unix(path));
  }
  // The destructor unlinked the path; and even a stale leftover file from
  // a crashed process must not block a fresh bind.
  SocketListener second = SocketListener::Listen(SocketAddress::Unix(path));
  EXPECT_EQ(second.local_address().path, path);
}

TEST(SocketConnectTest, RefusedConnectFailsTyped) {
  // Grab an ephemeral port, then free it: the connect must be refused.
  uint16_t port;
  {
    SocketListener listener =
        SocketListener::Listen(SocketAddress::Tcp("127.0.0.1", 0));
    port = listener.local_address().port;
  }
  EXPECT_THROW(SocketConnect(SocketAddress::Tcp("127.0.0.1", port), 1.0),
               ChannelError);
  EXPECT_THROW(SocketConnect(SocketAddress::Unix(UdsPath("absent")), 1.0),
               TransportError);
}

TEST(FaultInjectorTest, DropLosesMessageAndTimeoutSurfacesIt) {
  MemChannelPair pair;
  FaultPlan plan;
  plan.kind = FaultKind::kDrop;
  plan.seed = 3;
  plan.max_faults = 1;
  FaultInjector injector(plan);
  FaultInjectingChannel a(pair.endpoint(0), injector);
  pair.endpoint(1).set_recv_timeout_seconds(0.02);
  a.SendU64(1);  // Dropped.
  try {
    pair.endpoint(1).RecvU64();
    FAIL() << "expected timeout";
  } catch (const ChannelError& e) {
    EXPECT_EQ(e.kind(), ChannelErrorKind::kTimeout);
  }
}

}  // namespace
}  // namespace pafs
