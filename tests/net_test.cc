// Tests for the simulated network substrate: framing helpers, byte/round
// accounting, blocking semantics across threads, and the cost model.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bignum/bigint.h"
#include "net/channel.h"
#include "net/throttle.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace pafs {
namespace {

TEST(MemChannelTest, RoundTripPrimitives) {
  MemChannelPair pair;
  Channel& a = pair.endpoint(0);
  Channel& b = pair.endpoint(1);

  a.SendU64(0xDEADBEEFull);
  EXPECT_EQ(b.RecvU64(), 0xDEADBEEFull);

  Block blk(123, 456);
  a.SendBlock(blk);
  EXPECT_EQ(b.RecvBlock(), blk);

  std::vector<Block> blocks = {Block(1, 2), Block(3, 4), Block(5, 6)};
  a.SendBlocks(blocks);
  EXPECT_EQ(b.RecvBlocks(), blocks);

  BigInt big = BigInt::FromDecimal("123456789012345678901234567890");
  a.SendBigInt(big);
  EXPECT_EQ(b.RecvBigInt(), big);

  std::vector<uint8_t> bytes = {9, 8, 7};
  a.SendBytes(bytes);
  EXPECT_EQ(b.RecvBytes(), bytes);

  std::vector<uint8_t> empty;
  a.SendBytes(empty);
  EXPECT_EQ(b.RecvBytes(), empty);
}

TEST(MemChannelTest, DuplexTraffic) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(1);
  pair.endpoint(1).SendU64(2);
  EXPECT_EQ(pair.endpoint(1).RecvU64(), 1u);
  EXPECT_EQ(pair.endpoint(0).RecvU64(), 2u);
}

TEST(MemChannelTest, CountsBytes) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(7);  // 8 bytes
  pair.endpoint(1).RecvU64();
  pair.endpoint(1).SendBlock(Block());  // 16 bytes
  pair.endpoint(0).RecvBlock();
  EXPECT_EQ(pair.TotalBytes(), 24u);
  EXPECT_EQ(pair.endpoint(0).stats().bytes_sent, 8u);
  EXPECT_EQ(pair.endpoint(1).stats().bytes_sent, 16u);
}

TEST(MemChannelTest, CountsDirectionFlips) {
  MemChannelPair pair;
  Channel& a = pair.endpoint(0);
  Channel& b = pair.endpoint(1);
  // a->b, b->a, a->b: three flips total across both endpoints.
  a.SendU64(1);
  b.RecvU64();
  b.SendU64(2);
  a.RecvU64();
  a.SendU64(3);
  b.RecvU64();
  EXPECT_EQ(pair.TotalRounds(), 3u);
}

TEST(MemChannelTest, ResetClearsStats) {
  MemChannelPair pair;
  pair.endpoint(0).SendU64(7);
  pair.endpoint(1).RecvU64();
  pair.ResetStats();
  EXPECT_EQ(pair.TotalBytes(), 0u);
  EXPECT_EQ(pair.TotalRounds(), 0u);
}

TEST(MemChannelTest, RecvBlocksUntilDataArrives) {
  MemChannelPair pair;
  uint64_t got = 0;
  std::thread reader([&] { got = pair.endpoint(1).RecvU64(); });
  // Give the reader a chance to block, then satisfy it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  pair.endpoint(0).SendU64(99);
  reader.join();
  EXPECT_EQ(got, 99u);
}

TEST(NetworkProfileTest, TransferTimeComposition) {
  NetworkProfile lan = LanProfile();
  // Pure-bandwidth component.
  EXPECT_NEAR(lan.TransferSeconds(125000000, 0), 1.0, 1e-9);
  // Pure-latency component: each round costs half an RTT.
  EXPECT_NEAR(lan.TransferSeconds(0, 10), 10 * lan.rtt_seconds / 2, 1e-12);
  // WAN is strictly slower for the same traffic.
  NetworkProfile wan = WanProfile();
  EXPECT_GT(wan.TransferSeconds(1000000, 4), lan.TransferSeconds(1000000, 4));
}

TEST(ThrottledChannelTest, PreservesData) {
  MemChannelPair pair;
  NetworkProfile fast{"fast", 1e9, 0.0};
  ThrottledChannel a(pair.endpoint(0), fast);
  ThrottledChannel b(pair.endpoint(1), fast);
  a.SendU64(777);
  EXPECT_EQ(b.RecvU64(), 777u);
  Block blk(5, 6);
  b.SendBlock(blk);
  EXPECT_EQ(a.RecvBlock(), blk);
}

TEST(ThrottledChannelTest, EmulatesBandwidthDelay) {
  MemChannelPair pair;
  // 1 MB/s, no latency: 100 KB should take ~100 ms (scaled 10x -> ~10 ms).
  NetworkProfile slow{"slow", 1e6, 0.0};
  ThrottledChannel a(pair.endpoint(0), slow, /*time_scale=*/10.0);
  std::vector<uint8_t> payload(100000, 7);
  Timer timer;
  a.SendBytes(payload);
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.008);
  EXPECT_NEAR(a.emulated_delay_seconds() * 10.0, 0.1, 0.01);
}

TEST(ThrottledChannelTest, ChargesHalfRttPerFlip) {
  MemChannelPair pair;
  NetworkProfile laggy{"laggy", 1e12, 0.020};  // 20 ms RTT, no bandwidth.
  ThrottledChannel a(pair.endpoint(0), laggy, /*time_scale=*/1.0);
  ThrottledChannel b(pair.endpoint(1), laggy, /*time_scale=*/1.0);
  // Three direction flips on a: send (flip), recv, send (flip).
  a.SendU64(1);
  b.RecvU64();
  b.SendU64(2);
  a.RecvU64();
  a.SendU64(3);
  b.RecvU64();
  EXPECT_NEAR(a.emulated_delay_seconds(), 0.020, 1e-3);  // Two flips on a.
  EXPECT_NEAR(b.emulated_delay_seconds(), 0.010, 1e-3);  // One flip on b.
}

TEST(ThrottledChannelTest, WallClockMatchesAnalyticEstimate) {
  // End-to-end check that the emulation agrees with the cost model: a
  // ping-pong exchange over throttled endpoints should take (up to sleep
  // granularity) NetworkProfile::TransferSeconds of the observed traffic.
  MemChannelPair pair;
  NetworkProfile profile{"test-link", 2e6, 0.004};  // 2 MB/s, 4 ms RTT.
  ThrottledChannel a(pair.endpoint(0), profile);
  ThrottledChannel b(pair.endpoint(1), profile);

  std::vector<uint8_t> payload(4000, 0xAB);
  Timer timer;
  std::thread peer([&] {
    for (int i = 0; i < 8; ++i) {
      b.RecvBytes();
      b.SendBytes(payload);
    }
  });
  for (int i = 0; i < 8; ++i) {
    a.SendBytes(payload);
    a.RecvBytes();
  }
  peer.join();
  double wall = timer.ElapsedSeconds();

  double estimate =
      profile.TransferSeconds(pair.TotalBytes(), pair.TotalRounds());
  // The sleeps themselves are exactly the analytic delays, so the two
  // endpoints' totals must reconstruct the estimate almost exactly.
  EXPECT_NEAR(a.emulated_delay_seconds() + b.emulated_delay_seconds(),
              estimate, 0.05 * estimate);
  // Wall-clock adds scheduler overshoot per sleep; the exchange is strictly
  // half-duplex, so it can never beat the estimate.
  EXPECT_GE(wall, 0.95 * estimate);
  EXPECT_LE(wall, 1.5 * estimate + 0.02);
}

TEST(ThrottledChannelTest, SurfacesEmulatedDelayAsSpanAttribute) {
  PafsTelemetry::Reset();
  PafsTelemetry::Enable();
  obs::SetThreadParty("throttle-test");

  MemChannelPair pair;
  NetworkProfile slow{"slow", 1e6, 0.010};  // 1 MB/s, 10 ms RTT.
  ThrottledChannel a(pair.endpoint(0), slow, /*time_scale=*/100.0);
  std::vector<uint8_t> payload(50000, 1);
  {
    obs::TraceSpan span("throttled.send");
    a.SendBytes(payload);
  }
  PafsTelemetry::Disable();

  // The span must carry the channel's accumulated sleep so phase
  // aggregators can separate link time from compute.
  double attr = -1;
  obs::ForEachParty([&](const std::string& party,
                        const std::vector<const obs::PhaseNode*>& roots) {
    if (party != "throttle-test") return;
    ASSERT_EQ(roots.size(), 1u);
    EXPECT_EQ(roots[0]->name, "throttled.send");
    auto it = roots[0]->attrs.find("emulated_delay_seconds");
    ASSERT_NE(it, roots[0]->attrs.end());
    attr = it->second;
  });
  EXPECT_NEAR(attr, a.emulated_delay_seconds(), 1e-12);
  // 50 KB at 1 MB/s plus half an RTT, scaled 100x: (0.05 + 0.005) / 100.
  EXPECT_NEAR(attr, 0.00055, 0.0001);
  PafsTelemetry::Reset();
}

}  // namespace
}  // namespace pafs
