// Tests for the synthetic cohort generators and CSV persistence. The
// generators must reproduce the population structure the privacy analysis
// depends on (demographic-genotype correlation).
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/hypertension_gen.h"
#include "data/warfarin_gen.h"
#include "ml/metrics.h"
#include "util/random.h"

namespace pafs {
namespace {

TEST(WarfarinGenTest, SchemaAndSizes) {
  Rng rng(1);
  Dataset data = GenerateWarfarinCohort(500, rng);
  EXPECT_EQ(data.size(), 500u);
  EXPECT_EQ(data.num_features(), WarfarinSchema::kNumFeatures);
  EXPECT_EQ(data.num_classes(), kWarfarinNumClasses);
  EXPECT_EQ(data.SensitiveFeatures(),
            (std::vector<int>{WarfarinSchema::kVkorc1, WarfarinSchema::kCyp2c9}));
}

TEST(WarfarinGenTest, DeterministicPerSeed) {
  Rng rng_a(7), rng_b(7);
  Dataset a = GenerateWarfarinCohort(100, rng_a);
  Dataset b = GenerateWarfarinCohort(100, rng_b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.row(i), b.row(i));
    EXPECT_EQ(a.label(i), b.label(i));
  }
}

TEST(WarfarinGenTest, AllDoseClassesPresent) {
  Rng rng(2);
  Dataset data = GenerateWarfarinCohort(5000, rng);
  std::vector<double> priors = data.ClassPriors();
  for (int c = 0; c < kWarfarinNumClasses; ++c) {
    EXPECT_GT(priors[c], 0.02) << "class " << c;
  }
  // Medium dose should dominate, as in the real IWPC cohort.
  EXPECT_GT(priors[1], priors[0]);
  EXPECT_GT(priors[1], priors[2]);
}

TEST(WarfarinGenTest, VkorcCorrelatesWithRace) {
  // The inference attack's premise: ancestry predicts genotype. Asian
  // patients must have far more A alleles than Black patients.
  Rng rng(3);
  Dataset data = GenerateWarfarinCohort(8000, rng);
  double asian_sum = 0, asian_n = 0, black_sum = 0, black_n = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    int race = data.row(i)[WarfarinSchema::kRace];
    int vkorc1 = data.row(i)[WarfarinSchema::kVkorc1];
    if (race == 1) {
      asian_sum += vkorc1;
      asian_n += 1;
    } else if (race == 2) {
      black_sum += vkorc1;
      black_n += 1;
    }
  }
  EXPECT_GT(asian_sum / asian_n, 1.5);  // ~2 * 0.9
  EXPECT_LT(black_sum / black_n, 0.5);  // ~2 * 0.1
}

TEST(WarfarinGenTest, GenotypePredictsDose) {
  // VKORC1 AA patients need lower doses: the pharmacogenomic signal the
  // classifiers learn.
  Rng rng(4);
  Dataset data = GenerateWarfarinCohort(8000, rng);
  double aa_low = 0, aa_n = 0, gg_low = 0, gg_n = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    int vkorc1 = data.row(i)[WarfarinSchema::kVkorc1];
    bool low = data.label(i) == 0;
    if (vkorc1 == 2) {
      aa_low += low;
      aa_n += 1;
    } else if (vkorc1 == 0) {
      gg_low += low;
      gg_n += 1;
    }
  }
  EXPECT_GT(aa_low / aa_n, gg_low / gg_n + 0.2);
}

TEST(HypertensionGenTest, SchemaAndClasses) {
  Rng rng(5);
  Dataset data = GenerateHypertensionCohort(4000, rng);
  EXPECT_EQ(data.num_features(), HypertensionSchema::kNumFeatures);
  EXPECT_EQ(data.num_classes(), kHypertensionNumClasses);
  std::vector<double> priors = data.ClassPriors();
  for (int c = 0; c < kHypertensionNumClasses; ++c) {
    EXPECT_GT(priors[c], 0.05) << "class " << c;
  }
}

TEST(HypertensionGenTest, AgtCorrelatesWithAncestry) {
  Rng rng(6);
  Dataset data = GenerateHypertensionCohort(6000, rng);
  double g0_sum = 0, g0_n = 0, g2_sum = 0, g2_n = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    int race = data.row(i)[HypertensionSchema::kRace];
    int agt = data.row(i)[HypertensionSchema::kAgt];
    if (race == 0) {
      g0_sum += agt;
      g0_n += 1;
    } else if (race == 2) {
      g2_sum += agt;
      g2_n += 1;
    }
  }
  EXPECT_GT(g2_sum / g2_n, g0_sum / g0_n + 0.5);
}

TEST(CsvTest, RoundTrip) {
  Rng rng(7);
  Dataset data = GenerateWarfarinCohort(50, rng);
  std::string path = "/tmp/pafs_csv_test.csv";
  ASSERT_TRUE(SaveCsv(data, path).ok());
  auto loaded = LoadCsv(path, data.features(), data.num_classes());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded.value().row(i), data.row(i));
    EXPECT_EQ(loaded.value().label(i), data.label(i));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsHeaderMismatch) {
  Rng rng(8);
  Dataset data = GenerateWarfarinCohort(5, rng);
  std::string path = "/tmp/pafs_csv_test2.csv";
  ASSERT_TRUE(SaveCsv(data, path).ok());
  std::vector<FeatureSpec> wrong = data.features();
  wrong[0].name = "not_age";
  auto loaded = LoadCsv(path, wrong, data.num_classes());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsOutOfRangeValues) {
  std::string path = "/tmp/pafs_csv_test3.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fprintf(f, "f0,label\n5,0\n");
    fclose(f);
  }
  auto loaded = LoadCsv(path, {{"f0", 2, false}}, 2);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto loaded = LoadCsv("/tmp/definitely_missing_pafs.csv",
                        {{"f0", 2, false}}, 2);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pafs
