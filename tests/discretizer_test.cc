// Tests for the continuous-attribute discretizer.
#include <gtest/gtest.h>

#include "ml/discretizer.h"
#include "util/random.h"

namespace pafs {
namespace {

TEST(DiscretizerTest, EqualWidthBins) {
  Discretizer disc;
  disc.Fit({{0.0, 10.0, 2.5, 7.5, 5.0}}, 4, BinningStrategy::kEqualWidth);
  ASSERT_TRUE(disc.fitted());
  EXPECT_EQ(disc.bins(), 4);
  ASSERT_EQ(disc.edges(0).size(), 3u);
  EXPECT_DOUBLE_EQ(disc.edges(0)[0], 2.5);
  EXPECT_DOUBLE_EQ(disc.edges(0)[1], 5.0);
  EXPECT_DOUBLE_EQ(disc.edges(0)[2], 7.5);
  EXPECT_EQ(disc.Transform(0, 0.0), 0);
  EXPECT_EQ(disc.Transform(0, 2.49), 0);
  EXPECT_EQ(disc.Transform(0, 2.51), 1);
  EXPECT_EQ(disc.Transform(0, 9.9), 3);
}

TEST(DiscretizerTest, TransformClampsOutOfRange) {
  Discretizer disc;
  disc.Fit({{0.0, 1.0}}, 2, BinningStrategy::kEqualWidth);
  EXPECT_EQ(disc.Transform(0, -100.0), 0);
  EXPECT_EQ(disc.Transform(0, +100.0), 1);
}

TEST(DiscretizerTest, QuantileBinsBalanceCounts) {
  Rng rng(3);
  std::vector<double> values(10000);
  for (auto& v : values) v = rng.NextGaussian();  // Heavily non-uniform.
  Discretizer disc;
  disc.Fit({values}, 5, BinningStrategy::kQuantile);
  std::vector<int> counts(5, 0);
  for (double v : values) ++counts[disc.Transform(0, v)];
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 150);  // Each quintile holds ~20%.
  }
}

TEST(DiscretizerTest, EqualWidthUnbalancedOnSkewedData) {
  // The contrast that justifies having both strategies.
  Rng rng(4);
  std::vector<double> values(10000);
  for (auto& v : values) {
    double g = rng.NextGaussian();
    v = g * g;  // Chi-squared: strong right skew.
  }
  Discretizer equal_width, quantile;
  equal_width.Fit({values}, 4, BinningStrategy::kEqualWidth);
  quantile.Fit({values}, 4, BinningStrategy::kQuantile);
  std::vector<int> ew(4, 0), qt(4, 0);
  for (double v : values) {
    ++ew[equal_width.Transform(0, v)];
    ++qt[quantile.Transform(0, v)];
  }
  // Equal-width packs nearly everything into bin 0; quantile does not.
  EXPECT_GT(ew[0], 8000);
  EXPECT_LT(qt[0], 4000);
}

TEST(DiscretizerTest, ConstantColumnIsSafe) {
  Discretizer disc;
  disc.Fit({{5.0, 5.0, 5.0}}, 3, BinningStrategy::kQuantile);
  EXPECT_EQ(disc.Transform(0, 5.0), 2);  // All edges equal: top bin.
  EXPECT_EQ(disc.Transform(0, 4.0), 0);
}

TEST(DiscretizerTest, DiscretizeTableBuildsValidDataset) {
  Rng rng(5);
  std::vector<std::vector<double>> columns(3, std::vector<double>(200));
  std::vector<int> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    columns[0][i] = rng.NextGaussian() * 10 + 50;   // "age"
    columns[1][i] = rng.NextGaussian() * 5 + 25;    // "bmi"
    columns[2][i] = rng.NextDouble();               // "marker" (sensitive)
    labels[i] = columns[0][i] > 50 ? 1 : 0;
  }
  Discretizer disc;
  disc.Fit(columns, 4, BinningStrategy::kQuantile);
  Dataset data = disc.DiscretizeTable({"age", "bmi", "marker"},
                                      {false, false, true}, columns, labels, 2);
  EXPECT_EQ(data.size(), 200u);
  EXPECT_EQ(data.num_features(), 3);
  EXPECT_EQ(data.FeatureCardinality(0), 4);
  EXPECT_EQ(data.SensitiveFeatures(), std::vector<int>{2});
  // Values in range by construction (Dataset validates on AddRow).
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.row(i)[0], disc.Transform(0, columns[0][i]));
  }
}

TEST(DiscretizerTest, MultiColumnIndependentEdges) {
  Discretizer disc;
  disc.Fit({{0, 1, 2, 3}, {100, 200, 300, 400}}, 2,
           BinningStrategy::kEqualWidth);
  EXPECT_EQ(disc.Transform(0, 0.5), 0);
  EXPECT_EQ(disc.Transform(1, 150), 0);
  EXPECT_EQ(disc.Transform(1, 350), 1);
}

}  // namespace
}  // namespace pafs
