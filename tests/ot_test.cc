// Tests for oblivious transfer: base OT correctness, IKNP extension
// correctness across repeated batches, and the obliviousness sanity checks
// that are observable from the transcripts.
#include <array>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/channel.h"
#include "ot/base_ot.h"
#include "ot/iknp.h"
#include "util/bitvec.h"
#include "util/random.h"

namespace pafs {
namespace {

TEST(BaseOtTest, ReceiverLearnsChosenMessage) {
  MemChannelPair pair;
  Rng sender_rng(1), receiver_rng(2);

  const int n = 8;
  std::vector<std::array<Block, 2>> messages(n);
  for (int i = 0; i < n; ++i) {
    messages[i] = {Block(100 + i, 0), Block(200 + i, 0)};
  }
  BitVec choices = BitVec::FromString("01101001");

  std::vector<Block> received;
  std::thread sender(
      [&] { BaseOtSend(pair.endpoint(0), messages, sender_rng); });
  received = BaseOtRecv(pair.endpoint(1), choices, receiver_rng);
  sender.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(received[i], messages[i][choices.Get(i) ? 1 : 0]) << i;
  }
}

TEST(BaseOtTest, EmptyBatchIsFine) {
  MemChannelPair pair;
  Rng sender_rng(1), receiver_rng(2);
  std::vector<std::array<Block, 2>> messages;
  std::thread sender(
      [&] { BaseOtSend(pair.endpoint(0), messages, sender_rng); });
  std::vector<Block> received =
      BaseOtRecv(pair.endpoint(1), BitVec(0), receiver_rng);
  sender.join();
  EXPECT_TRUE(received.empty());
}

class IknpTest : public ::testing::Test {
 protected:
  // Runs Setup once on a fresh channel pair; individual tests then push one
  // or more extension batches through the session.
  void SetUpSessions() {
    std::thread sender_thread(
        [&] { sender_.Setup(pair_.endpoint(0), sender_rng_); });
    receiver_.Setup(pair_.endpoint(1), receiver_rng_);
    sender_thread.join();
  }

  void RunBatch(size_t m, uint64_t tag) {
    std::vector<std::array<Block, 2>> messages(m);
    for (size_t i = 0; i < m; ++i) {
      messages[i] = {Block(tag * 1000 + i, 0), Block(tag * 1000 + i, 1)};
    }
    BitVec choices(m);
    for (size_t i = 0; i < m; ++i) choices.Set(i, choice_rng_.NextBool());

    std::vector<Block> received;
    std::thread sender_thread(
        [&] { sender_.Send(pair_.endpoint(0), messages); });
    received = receiver_.Recv(pair_.endpoint(1), choices);
    sender_thread.join();

    ASSERT_EQ(received.size(), m);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_EQ(received[i], messages[i][choices.Get(i) ? 1 : 0])
          << "batch " << tag << " index " << i;
    }
  }

  MemChannelPair pair_;
  Rng sender_rng_{11}, receiver_rng_{22}, choice_rng_{33};
  OtExtSender sender_;
  OtExtReceiver receiver_;
};

TEST_F(IknpTest, SingleBatch) {
  SetUpSessions();
  RunBatch(64, 1);
}

TEST_F(IknpTest, LargeBatch) {
  SetUpSessions();
  RunBatch(1000, 1);
}

TEST_F(IknpTest, NonByteAlignedBatch) {
  SetUpSessions();
  RunBatch(13, 1);
}

TEST_F(IknpTest, RepeatedBatchesStayInSync) {
  // The whole point of the session design: base OTs amortize across many
  // extension calls, so streams must stay aligned batch after batch.
  SetUpSessions();
  RunBatch(50, 1);
  RunBatch(7, 2);
  RunBatch(128, 3);
  RunBatch(1, 4);
}

TEST_F(IknpTest, SetupCostIsAmortized) {
  SetUpSessions();
  uint64_t bytes_after_setup = pair_.TotalBytes();
  RunBatch(256, 1);
  uint64_t batch_bytes = pair_.TotalBytes() - bytes_after_setup;
  // Setup moves 128 group elements (~128B each); extension moves ~32B per
  // transfer plus column traffic. The extension batch must be far cheaper
  // than setup.
  EXPECT_LT(batch_bytes, bytes_after_setup);
}

}  // namespace
}  // namespace pafs
