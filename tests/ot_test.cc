// Tests for oblivious transfer: base OT correctness, IKNP extension
// correctness across repeated batches, and the obliviousness sanity checks
// that are observable from the transcripts.
#include <array>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/channel.h"
#include "net/error.h"
#include "ot/base_ot.h"
#include "ot/iknp.h"
#include "ot/ot_pool.h"
#include "util/bitvec.h"
#include "util/random.h"
#include "util/serial.h"

namespace pafs {
namespace {

TEST(BaseOtTest, ReceiverLearnsChosenMessage) {
  MemChannelPair pair;
  Rng sender_rng(1), receiver_rng(2);

  const int n = 8;
  std::vector<std::array<Block, 2>> messages(n);
  for (int i = 0; i < n; ++i) {
    messages[i] = {Block(100 + i, 0), Block(200 + i, 0)};
  }
  BitVec choices = BitVec::FromString("01101001");

  std::vector<Block> received;
  std::thread sender(
      [&] { BaseOtSend(pair.endpoint(0), messages, sender_rng); });
  received = BaseOtRecv(pair.endpoint(1), choices, receiver_rng);
  sender.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(received[i], messages[i][choices.Get(i) ? 1 : 0]) << i;
  }
}

TEST(BaseOtTest, EmptyBatchIsFine) {
  MemChannelPair pair;
  Rng sender_rng(1), receiver_rng(2);
  std::vector<std::array<Block, 2>> messages;
  std::thread sender(
      [&] { BaseOtSend(pair.endpoint(0), messages, sender_rng); });
  std::vector<Block> received =
      BaseOtRecv(pair.endpoint(1), BitVec(0), receiver_rng);
  sender.join();
  EXPECT_TRUE(received.empty());
}

class IknpTest : public ::testing::Test {
 protected:
  // Runs Setup once on a fresh channel pair; individual tests then push one
  // or more extension batches through the session.
  void SetUpSessions() {
    std::thread sender_thread(
        [&] { sender_.Setup(pair_.endpoint(0), sender_rng_); });
    receiver_.Setup(pair_.endpoint(1), receiver_rng_);
    sender_thread.join();
  }

  void RunBatch(size_t m, uint64_t tag) {
    std::vector<std::array<Block, 2>> messages(m);
    for (size_t i = 0; i < m; ++i) {
      messages[i] = {Block(tag * 1000 + i, 0), Block(tag * 1000 + i, 1)};
    }
    BitVec choices(m);
    for (size_t i = 0; i < m; ++i) choices.Set(i, choice_rng_.NextBool());

    std::vector<Block> received;
    std::thread sender_thread(
        [&] { sender_.Send(pair_.endpoint(0), messages); });
    received = receiver_.Recv(pair_.endpoint(1), choices);
    sender_thread.join();

    ASSERT_EQ(received.size(), m);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_EQ(received[i], messages[i][choices.Get(i) ? 1 : 0])
          << "batch " << tag << " index " << i;
    }
  }

  MemChannelPair pair_;
  Rng sender_rng_{11}, receiver_rng_{22}, choice_rng_{33};
  OtExtSender sender_;
  OtExtReceiver receiver_;
};

TEST_F(IknpTest, SingleBatch) {
  SetUpSessions();
  RunBatch(64, 1);
}

TEST_F(IknpTest, LargeBatch) {
  SetUpSessions();
  RunBatch(1000, 1);
}

TEST_F(IknpTest, NonByteAlignedBatch) {
  SetUpSessions();
  RunBatch(13, 1);
}

TEST_F(IknpTest, RepeatedBatchesStayInSync) {
  // The whole point of the session design: base OTs amortize across many
  // extension calls, so streams must stay aligned batch after batch.
  SetUpSessions();
  RunBatch(50, 1);
  RunBatch(7, 2);
  RunBatch(128, 3);
  RunBatch(1, 4);
}

TEST_F(IknpTest, SetupCostIsAmortized) {
  SetUpSessions();
  uint64_t bytes_after_setup = pair_.TotalBytes();
  RunBatch(256, 1);
  uint64_t batch_bytes = pair_.TotalBytes() - bytes_after_setup;
  // Setup moves 128 group elements (~128B each); extension moves ~32B per
  // transfer plus column traffic. The extension batch must be far cheaper
  // than setup.
  EXPECT_LT(batch_bytes, bytes_after_setup);
}

// ---------------------------------------------------------------------------
// Random OTs and the pad pools (the offline half of the OT split).

class OtPoolTest : public IknpTest {
 protected:
  // One SendRandom/RecvRandom exchange of `count`, appended to the pools.
  void FillPools(OtSenderPadPool& spool, OtReceiverPadPool& rpool,
                 size_t count) {
    std::thread sender_thread(
        [&] { spool.Append(sender_.SendRandom(pair_.endpoint(0), count)); });
    rpool.Append(receiver_.RecvRandom(pair_.endpoint(1), choice_rng_, count));
    sender_thread.join();
  }

  // One derandomized transfer of `m` tagged messages through the pools;
  // checks the receiver learns exactly messages[choices].
  void RunPooled(size_t m, uint64_t tag, OtSenderPadPool* spool,
                 OtReceiverPadPool* rpool) {
    std::vector<std::array<Block, 2>> messages(m);
    for (size_t i = 0; i < m; ++i) {
      messages[i] = {Block(tag * 1000 + i, 0), Block(tag * 1000 + i, 1)};
    }
    BitVec choices(m);
    for (size_t i = 0; i < m; ++i) choices.Set(i, choice_rng_.NextBool());
    std::vector<Block> received;
    std::thread sender_thread([&] {
      PooledOtSend(pair_.endpoint(0), sender_, messages, spool);
    });
    received = PooledOtRecv(pair_.endpoint(1), receiver_, choices, rpool);
    sender_thread.join();
    ASSERT_EQ(received.size(), m);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_EQ(received[i], messages[i][choices.Get(i) ? 1 : 0])
          << "pooled batch " << tag << " index " << i;
    }
  }
};

TEST_F(OtPoolTest, RandomOtPadsMatchChoices) {
  // The random-OT invariant everything else builds on: the receiver's one
  // pad equals the sender's pad for the receiver's choice bit.
  SetUpSessions();
  std::vector<std::array<Block, 2>> sent;
  RandomOtBatch batch;
  std::thread sender_thread(
      [&] { sent = sender_.SendRandom(pair_.endpoint(0), 77); });
  batch = receiver_.RecvRandom(pair_.endpoint(1), choice_rng_, 77);
  sender_thread.join();
  ASSERT_EQ(sent.size(), 77u);
  ASSERT_EQ(batch.pads.size(), 77u);
  for (size_t j = 0; j < 77; ++j) {
    EXPECT_EQ(batch.pads[j], sent[j][batch.choices.Get(j) ? 1 : 0]) << j;
  }
}

TEST_F(OtPoolTest, PooledTransferEqualsDirectAndFallsBackWhenDry) {
  SetUpSessions();
  OtSenderPadPool spool(64);
  OtReceiverPadPool rpool(64);
  FillPools(spool, rpool, 64);
  RunPooled(50, 1, &spool, &rpool);  // Warm: spends 50 pads per side.
  EXPECT_EQ(spool.stats().hits, 50u);
  EXPECT_EQ(rpool.stats().hits, 50u);
  // 30 > the 14 remaining: the receiver announces 0 and both sides fall
  // back to the online extension — still correct, counted as misses.
  RunPooled(30, 2, &spool, &rpool);
  EXPECT_EQ(rpool.stats().misses, 30u);
  EXPECT_EQ(spool.depth(), 14u);  // Fallback spends no sender pads.
  // The streams stay aligned across the mix: pooled again afterwards.
  RunPooled(14, 3, &spool, &rpool);
  EXPECT_EQ(rpool.stats().hits, 64u);
}

TEST_F(OtPoolTest, SplitReceiveThenMaterializeMatchesEagerExpansion) {
  // The idle-worker split: park raw u columns, expand later. The pads must
  // land exactly where an eager SendRandom would have put the stream.
  SetUpSessions();
  OtSenderPadPool spool(32);
  OtReceiverPadPool rpool(32);
  std::thread sender_thread([&] {
    spool.AddPending(32, sender_.ReceiveRandomColumns(pair_.endpoint(0), 32));
  });
  rpool.Append(receiver_.RecvRandom(pair_.endpoint(1), choice_rng_, 32));
  sender_thread.join();
  EXPECT_TRUE(spool.HasPending());
  EXPECT_EQ(spool.depth(), 0u);
  EXPECT_EQ(spool.Deficit(), 0u);  // Pending counts toward the target.
  EXPECT_EQ(spool.Materialize(sender_), 32u);
  EXPECT_EQ(spool.depth(), 32u);
  RunPooled(32, 1, &spool, &rpool);
}

TEST_F(OtPoolTest, PoolsResumeFromSnapshotsMidStream) {
  // Serving-layer resumption shape: pools and OT endpoints are serialized
  // together mid-stream (pending columns still raw) and the restored pair
  // continues the derandomized stream with zero new base OTs.
  SetUpSessions();
  OtSenderPadPool spool(48);
  OtReceiverPadPool rpool(48);
  FillPools(spool, rpool, 24);
  std::thread sender_thread([&] {
    spool.AddPending(24, sender_.ReceiveRandomColumns(pair_.endpoint(0), 24));
  });
  rpool.Append(receiver_.RecvRandom(pair_.endpoint(1), choice_rng_, 24));
  sender_thread.join();
  RunPooled(10, 1, &spool, &rpool);  // Advance head_seq past zero.

  std::vector<uint8_t> sender_bytes = sender_.Serialize();
  std::vector<uint8_t> receiver_bytes = receiver_.Serialize();
  std::vector<uint8_t> spool_bytes, rpool_bytes;
  ByteWriter sw(&spool_bytes);
  spool.Serialize(sw);
  ByteWriter rw(&rpool_bytes);
  rpool.Serialize(rw);

  sender_ = OtExtSender::Deserialize(sender_bytes);
  receiver_ = OtExtReceiver::Deserialize(receiver_bytes);
  OtSenderPadPool spool2(48);
  OtReceiverPadPool rpool2(48);
  ByteReader sr(spool_bytes);
  spool2.Restore(sr);
  ByteReader rr(rpool_bytes);
  rpool2.Restore(rr);
  EXPECT_TRUE(spool2.HasPending());
  EXPECT_EQ(spool2.Materialize(sender_), 24u);
  RunPooled(38, 2, &spool2, &rpool2);  // 14 ready + 24 materialized.
  EXPECT_EQ(spool2.depth(), 0u);
  EXPECT_EQ(rpool2.depth(), 0u);
}

TEST_F(OtPoolTest, SequenceSkewIsATypedDesync) {
  SetUpSessions();
  OtSenderPadPool spool(8);
  OtReceiverPadPool rpool(8);
  FillPools(spool, rpool, 8);
  // Hand-craft a receiver announcement whose start sequence the sender's
  // pool is not at: lockstep streams make this corruption, not a miss.
  Channel& rch = pair_.endpoint(1);
  rch.SendU64(4);                          // pooled count
  rch.SendU64(5);                          // skewed start_seq (pool is at 0)
  rch.SendBytes(std::vector<uint8_t>{0});  // packed corrections
  std::vector<std::array<Block, 2>> messages(
      4, std::array<Block, 2>{Block(1, 2), Block(3, 4)});
  EXPECT_THROW(PooledOtSend(pair_.endpoint(0), sender_, messages, &spool),
               ProtocolError);
}

TEST_F(OtPoolTest, CountMismatchIsATypedError) {
  SetUpSessions();
  OtSenderPadPool spool(8);
  OtReceiverPadPool rpool(8);
  FillPools(spool, rpool, 8);
  Channel& rch = pair_.endpoint(1);
  rch.SendU64(3);  // Announces 3 pooled transfers; the sender expects 4.
  std::vector<std::array<Block, 2>> messages(
      4, std::array<Block, 2>{Block(1, 2), Block(3, 4)});
  EXPECT_THROW(PooledOtSend(pair_.endpoint(0), sender_, messages, &spool),
               ProtocolError);
}

}  // namespace
}  // namespace pafs
