// Tests for model persistence: exact round-trips (hex-float parameters),
// format validation, and cross-component use (loaded model drives the
// secure protocol identically).
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "data/warfarin_gen.h"
#include "ml/model_io.h"
#include "util/random.h"

namespace pafs {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  ModelIoTest() : rng_(55), data_(GenerateWarfarinCohort(1200, rng_)) {}

  ~ModelIoTest() override { std::remove(path_.c_str()); }

  Rng rng_;
  Dataset data_;
  std::string path_ = "/tmp/pafs_model_io_test.model";
};

TEST_F(ModelIoTest, NaiveBayesExactRoundTrip) {
  NaiveBayes model;
  model.Train(data_);
  ASSERT_TRUE(SaveNaiveBayes(model, path_).ok());
  StatusOr<NaiveBayes> loaded = LoadNaiveBayes(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_classes(), model.num_classes());
  ASSERT_EQ(loaded.value().num_features(), model.num_features());
  // Hex-float serialization: bit-exact parameters.
  for (int c = 0; c < model.num_classes(); ++c) {
    EXPECT_EQ(loaded.value().log_prior(c), model.log_prior(c));
  }
  for (int f = 0; f < model.num_features(); ++f) {
    for (int v = 0; v < model.feature_cardinality(f); ++v) {
      for (int c = 0; c < model.num_classes(); ++c) {
        ASSERT_EQ(loaded.value().log_likelihood(f, v, c),
                  model.log_likelihood(f, v, c));
      }
    }
  }
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(loaded.value().Predict(data_.row(i)), model.Predict(data_.row(i)));
  }
}

TEST_F(ModelIoTest, DecisionTreeRoundTrip) {
  DecisionTree model;
  model.Train(data_);
  ASSERT_TRUE(SaveDecisionTree(model, path_).ok());
  StatusOr<DecisionTree> loaded = LoadDecisionTree(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumNodes(), model.NumNodes());
  EXPECT_EQ(loaded.value().Depth(), model.Depth());
  for (size_t i = 0; i < data_.size(); ++i) {
    ASSERT_EQ(loaded.value().Predict(data_.row(i)), model.Predict(data_.row(i)));
  }
}

TEST_F(ModelIoTest, LinearModelExactRoundTrip) {
  LinearModel model;
  model.Train(data_, LinearTrainParams());
  ASSERT_TRUE(SaveLinearModel(model, path_).ok());
  StatusOr<LinearModel> loaded = LoadLinearModel(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().dim(), model.dim());
  for (int c = 0; c < model.num_classes(); ++c) {
    EXPECT_EQ(loaded.value().bias(c), model.bias(c));
    for (int d = 0; d < model.dim(); ++d) {
      ASSERT_EQ(loaded.value().weight(c, d), model.weight(c, d));
    }
  }
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(loaded.value().Predict(data_.row(i)), model.Predict(data_.row(i)));
  }
}

TEST_F(ModelIoTest, RandomForestRoundTrip) {
  RandomForest model;
  ForestParams params;
  params.num_trees = 5;
  model.Train(data_, params, rng_);
  ASSERT_TRUE(SaveRandomForest(model, path_).ok());
  StatusOr<RandomForest> loaded = LoadRandomForest(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_trees(), model.num_trees());
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_EQ(loaded.value().Predict(data_.row(i)), model.Predict(data_.row(i)));
  }
}

TEST_F(ModelIoTest, RejectsWrongMagic) {
  NaiveBayes nb;
  nb.Train(data_);
  ASSERT_TRUE(SaveNaiveBayes(nb, path_).ok());
  // A tree loader must refuse an NB file and vice versa.
  EXPECT_FALSE(LoadDecisionTree(path_).ok());
  EXPECT_FALSE(LoadLinearModel(path_).ok());
  EXPECT_FALSE(LoadRandomForest(path_).ok());
}

TEST_F(ModelIoTest, RejectsTruncatedFile) {
  NaiveBayes nb;
  nb.Train(data_);
  ASSERT_TRUE(SaveNaiveBayes(nb, path_).ok());
  // Truncate the file in the middle of the tables.
  {
    FILE* f = fopen(path_.c_str(), "r+");
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size / 2), 0);
    fclose(f);
  }
  StatusOr<NaiveBayes> loaded = LoadNaiveBayes(path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelIoTest, RejectsCorruptChildIndex) {
  const char* bad =
      "pafs_decision_tree v1\nnodes 2\nnode 0 0 2 1 99\nleaf 1\n";
  {
    FILE* f = fopen(path_.c_str(), "w");
    fputs(bad, f);
    fclose(f);
  }
  StatusOr<DecisionTree> loaded = LoadDecisionTree(path_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(ModelIoTest, MissingFileIsNotFound) {
  StatusOr<NaiveBayes> loaded = LoadNaiveBayes("/tmp/missing_pafs.model");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pafs
