// pafs_server — stand up a secure-classification server from a cohort CSV:
//
//   pafs_server <nb|tree|linear|forest> <train.csv> <budget>
//               [--listen=tcp:HOST:PORT|unix:PATH] [--max-sessions=N]
//               [--threads=N] [--max-pending=N] [--idle-timeout=SECONDS]
//               [--resume-cache=N] [--query-budget=SECONDS]
//               [--pool-depth=N] [--pool-refill-batch=N]
//               [--gc-pool-depth=N] [--ot-pool-depth=N]
//               [--batch-max-records=N] [--no-pool] [--breakdown]
//
// Trains the classifier, selects the privacy-aware disclosure plan under
// the given risk budget, and serves secure classifications to concurrent
// pafs_client sessions until SIGINT/SIGTERM (graceful drain: in-flight
// queries finish, idle sessions close). The CSV must follow one of the
// bundled schemas (see pafs_cli generate).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/pipeline.h"
#include "data/csv.h"
#include "data/hypertension_gen.h"
#include "data/warfarin_gen.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "serve/model.h"
#include "serve/server.h"
#include "util/random.h"

using namespace pafs;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: pafs_server <nb|tree|linear|forest> <train.csv> <budget>\n"
      "                   [--listen=tcp:HOST:PORT|unix:PATH]\n"
      "                   [--max-sessions=N] [--threads=N]\n"
      "                   [--max-pending=N] [--idle-timeout=SECONDS]\n"
      "                   [--resume-cache=N] [--query-budget=SECONDS]\n"
      "                   [--pool-depth=N] [--pool-refill-batch=N]\n"
      "                   [--gc-pool-depth=N] [--ot-pool-depth=N]\n"
      "                   [--batch-max-records=N] [--no-pool]\n"
      "                   [--breakdown]\n"
      "  --resume-cache=N     suspended-session snapshots kept for ticket\n"
      "                       resumption (0 disables resume tickets)\n"
      "  --query-budget=S     watchdog cancels any single query running\n"
      "                       longer than S seconds (0 = unlimited)\n"
      "  --pool-depth=N       Paillier pads precomputed per idle session\n"
      "                       for the linear protocol (0 disables pools)\n"
      "  --pool-refill-batch=N  pads an idle-time filler step computes\n"
      "                       before re-checking for foreground work\n"
      "  --gc-pool-depth=N    circuits pre-garbled per disclosure key\n"
      "                       between queries (0 disables the GC pool)\n"
      "  --ot-pool-depth=N    random-OT pads precomputed per idle session\n"
      "                       for label transfer (0 disables the pad pool)\n"
      "  --batch-max-records=N  largest ClassifyBatch a session may submit\n"
      "                       in one wire batch\n"
      "  --no-pool            serve every query with inline modexps,\n"
      "                       online garbling, and online OT extension\n"
      "                       (same as PAFS_NO_POOL=1)\n");
  return 2;
}

StatusOr<Dataset> LoadAnyCohort(const std::string& path) {
  Rng rng(1);
  Dataset warfarin_schema = GenerateWarfarinCohort(1, rng);
  StatusOr<Dataset> as_warfarin =
      LoadCsv(path, warfarin_schema.features(), kWarfarinNumClasses);
  if (as_warfarin.ok()) return as_warfarin;
  Dataset hypertension_schema = GenerateHypertensionCohort(1, rng);
  return LoadCsv(path, hypertension_schema.features(),
                 kHypertensionNumClasses);
}

bool ParseClassifier(const char* name, ClassifierKind* kind) {
  if (std::strcmp(name, "nb") == 0) {
    *kind = ClassifierKind::kNaiveBayes;
  } else if (std::strcmp(name, "tree") == 0) {
    *kind = ClassifierKind::kDecisionTree;
  } else if (std::strcmp(name, "linear") == 0) {
    *kind = ClassifierKind::kLinear;
  } else if (std::strcmp(name, "forest") == 0) {
    *kind = ClassifierKind::kForest;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return Usage();
  ClassifierKind kind;
  if (!ParseClassifier(argv[1], &kind)) return Usage();
  double budget = std::strtod(argv[3], nullptr);

  serve::ServerConfig server_config;
  bool breakdown = false;
  for (int i = 4; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--listen=", 9) == 0) {
      StatusOr<SocketAddress> addr = SocketAddress::Parse(arg + 9);
      if (!addr.ok()) {
        std::fprintf(stderr, "bad --listen: %s\n",
                     addr.status().message().c_str());
        return 2;
      }
      server_config.address = addr.value();
    } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
      server_config.max_sessions = std::atoi(arg + 15);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      server_config.num_threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--max-pending=", 14) == 0) {
      server_config.max_pending_queries = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--idle-timeout=", 15) == 0) {
      server_config.idle_timeout_seconds = std::strtod(arg + 15, nullptr);
    } else if (std::strncmp(arg, "--resume-cache=", 15) == 0) {
      server_config.resume_cache_entries = std::atoi(arg + 15);
    } else if (std::strncmp(arg, "--query-budget=", 15) == 0) {
      server_config.query_budget_seconds = std::strtod(arg + 15, nullptr);
    } else if (std::strncmp(arg, "--pool-depth=", 13) == 0) {
      server_config.pool_pad_depth = std::atoi(arg + 13);
    } else if (std::strncmp(arg, "--pool-refill-batch=", 20) == 0) {
      server_config.pool_refill_batch = std::atoi(arg + 20);
    } else if (std::strncmp(arg, "--gc-pool-depth=", 16) == 0) {
      server_config.gc_pool_depth = std::atoi(arg + 16);
    } else if (std::strncmp(arg, "--ot-pool-depth=", 16) == 0) {
      server_config.ot_pool_depth = std::atoi(arg + 16);
    } else if (std::strncmp(arg, "--batch-max-records=", 20) == 0) {
      server_config.batch_max_records = std::atoi(arg + 20);
    } else if (std::strcmp(arg, "--no-pool") == 0) {
      server_config.enable_pools = false;
    } else if (std::strcmp(arg, "--breakdown") == 0) {
      breakdown = true;
      PafsTelemetry::Enable();
    } else {
      return Usage();
    }
  }

  StatusOr<Dataset> data = LoadAnyCohort(argv[2]);
  if (!data.ok()) {
    std::fprintf(stderr, "error loading %s: %s\n", argv[2],
                 data.status().message().c_str());
    return 1;
  }

  std::printf("training %s on %zu rows, risk budget %.3f...\n", argv[1],
              data.value().size(), budget);
  PipelineConfig config;
  config.classifier = kind;
  config.risk_budget = budget;
  SecureClassificationPipeline pipeline(data.value(), config);
  std::printf("disclosure plan: %zu of %d features, risk lift %.4f\n",
              pipeline.plan().features.size(),
              data.value().num_features(), pipeline.plan().risk_lift);

  try {
    serve::ClassificationServer server(
        serve::ServingModel::FromPipeline(pipeline), server_config);
    server.Start();
    std::printf("serving on %s (max %d sessions); Ctrl-C to drain\n",
                server.address().ToString().c_str(),
                server_config.max_sessions);
    std::fflush(stdout);

    std::signal(SIGINT, HandleSignal);
    std::signal(SIGTERM, HandleSignal);
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::printf("draining...\n");
    server.Stop();
    serve::ServerStats stats = server.stats();
    std::printf("served %llu queries over %llu sessions "
                "(%llu rejected, %llu failed, %llu reaped, %llu shed)\n",
                static_cast<unsigned long long>(stats.queries_served),
                static_cast<unsigned long long>(stats.sessions_accepted),
                static_cast<unsigned long long>(stats.sessions_rejected),
                static_cast<unsigned long long>(stats.sessions_failed),
                static_cast<unsigned long long>(stats.sessions_reaped),
                static_cast<unsigned long long>(stats.queries_shed));
    std::printf("recovery: %llu resumptions (%llu ticket misses), "
                "%llu replayed queries, %llu watchdog cancellations\n",
                static_cast<unsigned long long>(stats.resumptions),
                static_cast<unsigned long long>(stats.resume_misses),
                static_cast<unsigned long long>(stats.replay_hits),
                static_cast<unsigned long long>(stats.queries_cancelled));
    std::printf("offline precompute: %llu Paillier pads, %llu pre-garbled "
                "circuits, %llu OT pads filled while idle\n",
                static_cast<unsigned long long>(stats.pool_pads_precomputed),
                static_cast<unsigned long long>(stats.gc_pregarbled),
                static_cast<unsigned long long>(stats.ot_pads_precomputed));
    std::printf("batching: %llu wire batches covering %llu records\n",
                static_cast<unsigned long long>(stats.batches_served),
                static_cast<unsigned long long>(stats.batch_records));
  } catch (const TransportError& e) {
    std::fprintf(stderr, "server error: %s\n", e.what());
    return 1;
  }
  if (breakdown || obs::Enabled()) {  // --breakdown or PAFS_TELEMETRY=1.
    std::printf("%s", obs::RenderText().c_str());
  }
  return 0;
}
