// pafs_cli — command-line driver for the whole library:
//
//   pafs_cli generate <warfarin|hypertension> <n> <out.csv>
//   pafs_cli train <nb|tree|linear|forest> <in.csv> <out.model>
//   pafs_cli select <nb|tree|linear|forest> <in.csv> <budget>
//   pafs_cli classify <nb|tree|linear|forest> <in.csv> <budget> <row-index>
//
// The CSV schema is fixed per dataset family (see `generate`); `classify`
// runs the full pipeline including the secure protocol for one patient.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/pipeline.h"
#include "data/csv.h"
#include "data/hypertension_gen.h"
#include "data/warfarin_gen.h"
#include "ml/model_io.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/random.h"

using namespace pafs;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pafs_cli generate <warfarin|hypertension> <n> <out.csv>\n"
               "  pafs_cli train <nb|tree|linear|forest> <in.csv> <out.model>\n"
               "  pafs_cli select <nb|tree|linear|forest> <in.csv> <budget>\n"
               "  pafs_cli classify <nb|tree|linear|forest> <in.csv> <budget> <row>\n");
  return 2;
}

// The CLI works with the two bundled schemas; rows identify which one a
// CSV follows by its header, so we just try both.
StatusOr<Dataset> LoadAnyCohort(const std::string& path) {
  Rng rng(1);
  Dataset warfarin_schema = GenerateWarfarinCohort(1, rng);
  StatusOr<Dataset> as_warfarin =
      LoadCsv(path, warfarin_schema.features(), kWarfarinNumClasses);
  if (as_warfarin.ok()) return as_warfarin;
  Dataset hypertension_schema = GenerateHypertensionCohort(1, rng);
  return LoadCsv(path, hypertension_schema.features(),
                 kHypertensionNumClasses);
}

bool ParseClassifier(const char* name, ClassifierKind* kind) {
  if (std::strcmp(name, "nb") == 0) {
    *kind = ClassifierKind::kNaiveBayes;
  } else if (std::strcmp(name, "tree") == 0) {
    *kind = ClassifierKind::kDecisionTree;
  } else if (std::strcmp(name, "linear") == 0) {
    *kind = ClassifierKind::kLinear;
  } else if (std::strcmp(name, "forest") == 0) {
    *kind = ClassifierKind::kForest;
  } else {
    return false;
  }
  return true;
}

int CmdGenerate(int argc, char** argv) {
  if (argc != 5) return Usage();
  size_t n = std::strtoull(argv[3], nullptr, 10);
  if (n == 0) return Usage();
  Rng rng(2016);
  Dataset data = std::strcmp(argv[2], "warfarin") == 0
                     ? GenerateWarfarinCohort(n, rng)
                     : GenerateHypertensionCohort(n, rng);
  Status status = SaveCsv(data, argv[4]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %zu rows to %s\n", data.size(), argv[4]);
  return 0;
}

int CmdTrain(int argc, char** argv) {
  if (argc != 5) return Usage();
  StatusOr<Dataset> data = LoadAnyCohort(argv[3]);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().message().c_str());
    return 1;
  }
  Status status = Status::Ok();
  if (std::strcmp(argv[2], "nb") == 0) {
    NaiveBayes model;
    model.Train(data.value());
    status = SaveNaiveBayes(model, argv[4]);
  } else if (std::strcmp(argv[2], "tree") == 0) {
    DecisionTree model;
    model.Train(data.value());
    status = SaveDecisionTree(model, argv[4]);
  } else if (std::strcmp(argv[2], "linear") == 0) {
    LinearModel model;
    model.Train(data.value(), LinearTrainParams());
    status = SaveLinearModel(model, argv[4]);
  } else if (std::strcmp(argv[2], "forest") == 0) {
    Rng rng(7);
    RandomForest model;
    model.Train(data.value(), ForestParams(), rng);
    status = SaveRandomForest(model, argv[4]);
  } else {
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("model written to %s\n", argv[4]);
  return 0;
}

int CmdSelect(int argc, char** argv) {
  if (argc != 5) return Usage();
  ClassifierKind kind;
  if (!ParseClassifier(argv[2], &kind)) return Usage();
  StatusOr<Dataset> data = LoadAnyCohort(argv[3]);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().message().c_str());
    return 1;
  }
  double budget = std::atof(argv[4]);

  PipelineConfig config;
  config.classifier = kind;
  config.risk_budget = budget;
  SecureClassificationPipeline pipeline(data.value(), config);
  const DisclosurePlan& plan = pipeline.plan();
  std::printf("disclosure plan (budget %.4f):\n", budget);
  for (int f : plan.features) {
    std::printf("  %s\n", data.value().features()[f].name.c_str());
  }
  std::printf("risk lift        : %.4f\n", plan.risk_lift);
  std::printf("modeled cost     : %.3f ms/query\n",
              plan.compute_seconds * 1e3);
  std::printf("speedup vs pure  : %.1fx\n", plan.speedup_vs_pure);
  return 0;
}

int CmdClassify(int argc, char** argv) {
  if (argc != 6) return Usage();
  ClassifierKind kind;
  if (!ParseClassifier(argv[2], &kind)) return Usage();
  StatusOr<Dataset> data = LoadAnyCohort(argv[3]);
  if (!data.ok()) {
    std::fprintf(stderr, "error: %s\n", data.status().message().c_str());
    return 1;
  }
  double budget = std::atof(argv[4]);
  size_t row_index = std::strtoull(argv[5], nullptr, 10);
  if (row_index >= data.value().size()) {
    std::fprintf(stderr, "error: row %zu out of range (n=%zu)\n", row_index,
                 data.value().size());
    return 1;
  }

  PipelineConfig config;
  config.classifier = kind;
  config.risk_budget = budget;
  SecureClassificationPipeline pipeline(data.value(), config);
  const std::vector<int>& row = data.value().row(row_index);
  SmcRunStats stats = pipeline.Classify(row);
  std::printf("row %zu -> class %d (plaintext model says %d)\n", row_index,
              stats.predicted_class, pipeline.PlaintextPredict(row));
  std::printf("traffic: %llu bytes, %llu rounds; wall %.1f ms\n",
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.rounds),
              stats.wall_seconds * 1e3);
  // PAFS_TELEMETRY=1 collects the per-phase trace; render it on the way out.
  if (PafsTelemetry::enabled()) {
    std::printf("\n%s", obs::RenderText().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return CmdGenerate(argc, argv);
  if (std::strcmp(argv[1], "train") == 0) return CmdTrain(argc, argv);
  if (std::strcmp(argv[1], "select") == 0) return CmdSelect(argc, argv);
  if (std::strcmp(argv[1], "classify") == 0) return CmdClassify(argc, argv);
  return Usage();
}
