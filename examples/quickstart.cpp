// Quickstart: train a dosing model, pick a privacy-aware disclosure plan,
// and securely classify a patient — the whole pipeline in ~60 lines.
//
//   ./quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "data/warfarin_gen.h"
#include "util/random.h"

using namespace pafs;

int main() {
  // 1. The hospital's cohort (synthetic IWPC-style warfarin data).
  Rng rng(2016);
  Dataset cohort = GenerateWarfarinCohort(3000, rng);
  std::printf("Cohort: %zu patients, %d features, %d dose classes\n",
              cohort.size(), cohort.num_features(), cohort.num_classes());

  // 2. Configure the pipeline: naive Bayes dosing model, and a privacy
  //    budget that caps the adversary's posterior lift on any genotype at
  //    5 percentage points.
  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.risk_budget = 0.05;
  SecureClassificationPipeline pipeline(cohort, config);

  const DisclosurePlan& plan = pipeline.plan();
  std::printf("\nDisclosure plan (risk budget %.2f):\n", config.risk_budget);
  for (int f : plan.features) {
    std::printf("  disclose %-14s\n", cohort.features()[f].name.c_str());
  }
  std::printf("  risk lift   : %.4f\n", plan.risk_lift);
  std::printf("  est. speedup: %.1fx over pure SMC\n", plan.speedup_vs_pure);

  // 3. A patient arrives. Disclosed features go in plaintext; genotypes
  //    and everything else stay inside the secure protocol.
  const std::vector<int>& patient = cohort.row(7);
  SmcRunStats stats = pipeline.Classify(patient);

  static const char* kDoseNames[] = {"low (<21 mg/wk)", "medium (21-49)",
                                     "high (>49 mg/wk)"};
  std::printf("\nSecure classification result: %s\n",
              kDoseNames[stats.predicted_class]);
  std::printf("  matches plaintext model: %s\n",
              stats.predicted_class == pipeline.PlaintextPredict(patient)
                  ? "yes"
                  : "NO (bug!)");
  std::printf("  protocol traffic: %llu bytes, %llu rounds\n",
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.rounds));
  std::printf("  wall time (both parties, in-process): %.1f ms\n",
              stats.wall_seconds * 1e3);
  return 0;
}
