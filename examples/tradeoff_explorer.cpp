// Interactive-style exploration of the performance/privacy tradeoff: walks
// the whole budget axis and prints the Pareto frontier as a table, for any
// of the three classifiers.
//
//   ./tradeoff_explorer [naive_bayes|decision_tree|linear]
#include <cstdio>
#include <cstring>

#include "core/selection.h"
#include "data/warfarin_gen.h"
#include "ml/decision_tree.h"
#include "util/random.h"

using namespace pafs;

int main(int argc, char** argv) {
  ClassifierKind kind = ClassifierKind::kNaiveBayes;
  if (argc > 1) {
    if (std::strcmp(argv[1], "decision_tree") == 0) {
      kind = ClassifierKind::kDecisionTree;
    } else if (std::strcmp(argv[1], "linear") == 0) {
      kind = ClassifierKind::kLinear;
    } else if (std::strcmp(argv[1], "naive_bayes") != 0) {
      std::fprintf(stderr,
                   "usage: %s [naive_bayes|decision_tree|linear]\n", argv[0]);
      return 1;
    }
  }

  Rng rng(11);
  Dataset cohort = GenerateWarfarinCohort(3000, rng);
  DecisionTree tree;
  tree.Train(cohort);

  CostCalibration calibration = CostCalibration::Measure(512, rng);
  SmcCostModel cost_model(cohort.features(), cohort.num_classes(),
                          calibration);
  DisclosureSelector selector(cohort, cost_model, kind,
                              kind == ClassifierKind::kDecisionTree ? &tree
                                                                    : nullptr);

  double pure_seconds =
      selector.PureSmcCost().ComputeSeconds(calibration);
  std::printf("classifier: %s\n", ClassifierName(kind));
  std::printf("pure SMC modeled cost: %.2f ms/query\n\n", pure_seconds * 1e3);

  std::printf("%-8s %-10s %-10s %-9s  %s\n", "budget", "risk", "cost(ms)",
              "speedup", "disclosure set");
  std::vector<double> budgets = {0.0,  0.005, 0.01, 0.02, 0.05,
                                 0.1,  0.15,  0.25, 0.5,  1.0};
  std::vector<DisclosurePlan> frontier = selector.ParetoFrontier(budgets);
  for (size_t i = 0; i < frontier.size(); ++i) {
    const DisclosurePlan& plan = frontier[i];
    std::printf("%-8.3f %-10.4f %-10.3f %-9.1f ", budgets[i], plan.risk_lift,
                plan.compute_seconds * 1e3, plan.speedup_vs_pure);
    for (int f : plan.features) {
      std::printf(" %s", cohort.features()[f].name.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
