// The paper's motivating scenario in full: cloud-hosted pharmacogenomic
// warfarin dosing. Compares pure SMC against privacy-aware disclosure for
// all three classifier families, and shows what the inference adversary
// gains from the disclosure.
//
//   ./warfarin_dosing
#include <cstdio>

#include "core/pipeline.h"
#include "data/warfarin_gen.h"
#include "privacy/inference_attack.h"
#include "util/random.h"

using namespace pafs;

namespace {

void RunClassifier(const Dataset& cohort, ClassifierKind kind,
                   double risk_budget) {
  PipelineConfig config;
  config.classifier = kind;
  config.risk_budget = risk_budget;
  config.paillier_bits = 512;
  SecureClassificationPipeline pipeline(cohort, config);
  const DisclosurePlan& plan = pipeline.plan();

  std::printf("\n=== %s ===\n", ClassifierName(kind));
  std::printf("  disclosure set:");
  if (plan.features.empty()) std::printf(" (none)");
  for (int f : plan.features) {
    std::printf(" %s", cohort.features()[f].name.c_str());
  }
  std::printf("\n  risk lift %.4f (budget %.2f)\n", plan.risk_lift,
              risk_budget);

  const std::vector<int>& patient = cohort.row(42);
  SmcRunStats pure = pipeline.ClassifyWithDisclosure(patient, {});
  SmcRunStats planned = pipeline.Classify(patient);
  std::printf("  pure SMC   : %8.1f ms, %9llu bytes (class %d)\n",
              pure.wall_seconds * 1e3,
              static_cast<unsigned long long>(pure.bytes),
              pure.predicted_class);
  std::printf("  with plan  : %8.1f ms, %9llu bytes (class %d)\n",
              planned.wall_seconds * 1e3,
              static_cast<unsigned long long>(planned.bytes),
              planned.predicted_class);
  std::printf("  measured   : %.1fx less traffic, modeled speedup %.1fx\n",
              pure.bytes / static_cast<double>(planned.bytes),
              plan.speedup_vs_pure);
}

}  // namespace

int main() {
  Rng rng(7);
  Dataset cohort = GenerateWarfarinCohort(4000, rng);
  std::printf("Warfarin cohort: %zu patients\n", cohort.size());
  std::printf("Sensitive attributes: vkorc1, cyp2c9 (never disclosed)\n");

  const double kBudget = 0.05;
  RunClassifier(cohort, ClassifierKind::kDecisionTree, kBudget);
  RunClassifier(cohort, ClassifierKind::kNaiveBayes, kBudget);
  RunClassifier(cohort, ClassifierKind::kLinear, kBudget);

  // What does the adversary actually gain? Simulate the SNP-inference
  // attack (Fredrikson et al. style) against the plan's disclosure.
  std::printf("\n=== inference attack on the disclosure ===\n");
  auto [public_data, victims] = cohort.Split(0.5, rng);
  ChowLiuTree adversary;
  adversary.Train(public_data);
  PipelineConfig config;
  config.classifier = ClassifierKind::kNaiveBayes;
  config.risk_budget = kBudget;
  SecureClassificationPipeline pipeline(cohort, config);
  auto results =
      RunInferenceAttack(adversary, victims, pipeline.plan().features);
  for (const auto& r : results) {
    std::printf("  %-8s: baseline %.3f -> with disclosure %.3f (+%.3f)\n",
                cohort.features()[r.sensitive_feature].name.c_str(),
                r.baseline_accuracy, r.attack_accuracy,
                r.attack_accuracy - r.baseline_accuracy);
  }
  std::printf("\nBudgeted disclosure keeps the genotype inference gain "
              "small while cutting SMC cost.\n");
  return 0;
}
