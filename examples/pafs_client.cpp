// pafs_client — query a running pafs_server over TCP or UDS:
//
//   pafs_client --connect=tcp:HOST:PORT|unix:PATH [--row=v1,v2,...]
//               [--retries=N] [--retry-deadline=SECONDS] [--no-resume]
//
// Each --row is one feature vector (discretized values in schema order,
// comma-separated); with no --row flags, rows are read from stdin, one
// comma-separated line each. Every row runs one secure classification on
// the session; the predicted label and wire cost are printed per row. The
// plan's features are disclosed in plaintext to the server, the rest stay
// inside the protocol — the client never sees the model, the server never
// sees the hidden features. On a transport fault, a BUSY shed, or a
// server restart the client backs off and reconnects transparently
// (--retries bounds attempts per operation, --retry-deadline the total
// wall-clock budget; --retries=1 disables retry). Reconnects present the
// server's resumption ticket to skip the base OTs; --no-resume (or
// PAFS_NO_RESUME=1) forces every reconnect through a full handshake.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "net/error.h"
#include "net/socket.h"
#include "serve/client.h"
#include "serve/model.h"

using namespace pafs;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pafs_client --connect=tcp:HOST:PORT|unix:PATH\n"
               "                   [--row=v1,v2,...] [--row=...]\n"
               "                   [--retries=N] [--retry-deadline=SECONDS]\n"
               "                   [--no-resume]\n"
               "       (no --row: read comma-separated rows from stdin)\n");
  return 2;
}

bool ParseRow(const std::string& spec, std::vector<int>* row) {
  row->clear();
  std::stringstream ss(spec);
  std::string field;
  while (std::getline(ss, field, ',')) {
    try {
      row->push_back(std::stoi(field));
    } catch (...) {
      return false;
    }
  }
  return !row->empty();
}

}  // namespace

int main(int argc, char** argv) {
  serve::ClientConfig config;
  bool have_address = false;
  std::vector<std::vector<int>> rows;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--connect=", 10) == 0) {
      StatusOr<SocketAddress> addr = SocketAddress::Parse(arg + 10);
      if (!addr.ok()) {
        std::fprintf(stderr, "bad --connect: %s\n",
                     addr.status().message().c_str());
        return 2;
      }
      config.address = addr.value();
      have_address = true;
    } else if (std::strncmp(arg, "--row=", 6) == 0) {
      std::vector<int> row;
      if (!ParseRow(arg + 6, &row)) {
        std::fprintf(stderr, "bad --row: %s\n", arg + 6);
        return 2;
      }
      rows.push_back(std::move(row));
    } else if (std::strncmp(arg, "--retries=", 10) == 0) {
      config.retry.max_attempts = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--retry-deadline=", 17) == 0) {
      config.retry.deadline_seconds = std::strtod(arg + 17, nullptr);
    } else if (std::strcmp(arg, "--no-resume") == 0) {
      config.enable_resume = false;
    } else {
      return Usage();
    }
  }
  if (!have_address) return Usage();
  if (rows.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::vector<int> row;
      if (!ParseRow(line, &row)) {
        std::fprintf(stderr, "bad row: %s\n", line.c_str());
        return 2;
      }
      rows.push_back(std::move(row));
    }
  }
  if (rows.empty()) return Usage();

  try {
    serve::ClassificationClient client(config);
    const serve::SessionSetup& setup = client.setup();
    std::printf("session up: %s over %zu features, %d classes, "
                "%zu disclosed by plan\n",
                ClassifierName(setup.classifier), setup.features.size(),
                setup.num_classes, setup.plan_features.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].size() != setup.features.size()) {
        std::fprintf(stderr,
                     "row %zu has %zu values, schema expects %zu\n", i,
                     rows[i].size(), setup.features.size());
        return 2;
      }
      SmcRunStats stats = client.ClassifyWithStats(rows[i]);
      std::printf("row %zu -> class %d   (%.1f KB, %llu rounds, %.1f ms)\n",
                  i, stats.predicted_class, stats.bytes / 1024.0,
                  static_cast<unsigned long long>(stats.rounds),
                  stats.wall_seconds * 1e3);
    }
    if (client.reconnects() > 0) {
      std::fprintf(stderr, "(%llu transparent reconnects, %llu resumed)\n",
                   static_cast<unsigned long long>(client.reconnects()),
                   static_cast<unsigned long long>(client.resumes()));
    }
    client.Close();
  } catch (const TransportError& e) {
    std::fprintf(stderr, "session error: %s\n", e.what());
    return 1;
  }
  return 0;
}
