// Domain scenario #2: hypertension therapy selection as a cloud service,
// plus bring-your-own-data via CSV. Exports the synthetic cohort, reloads
// it (the path a user with real data would take), trains, selects a plan,
// and batch-classifies a clinic's worth of patients while tracking
// aggregate traffic.
//
//   ./secure_survey [risk_budget]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "data/csv.h"
#include "data/hypertension_gen.h"
#include "util/random.h"

using namespace pafs;

int main(int argc, char** argv) {
  double risk_budget = argc > 1 ? std::atof(argv[1]) : 0.08;

  Rng rng(99);
  Dataset generated = GenerateHypertensionCohort(2500, rng);

  // Round-trip through CSV: exactly what a user with their own cohort
  // export would do.
  const char* path = "/tmp/pafs_hypertension.csv";
  Status save = SaveCsv(generated, path);
  if (!save.ok()) {
    std::fprintf(stderr, "save failed: %s\n", save.message().c_str());
    return 1;
  }
  StatusOr<Dataset> loaded =
      LoadCsv(path, generated.features(), generated.num_classes());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().message().c_str());
    return 1;
  }
  const Dataset& cohort = loaded.value();
  std::printf("Loaded %zu patients from %s\n", cohort.size(), path);

  PipelineConfig config;
  config.classifier = ClassifierKind::kDecisionTree;
  config.risk_budget = risk_budget;
  SecureClassificationPipeline pipeline(cohort, config);

  std::printf("Therapy model: decision tree, %zu nodes\n",
              pipeline.tree().NumNodes());
  std::printf("Disclosure plan under budget %.3f:", risk_budget);
  for (int f : pipeline.plan().features) {
    std::printf(" %s", cohort.features()[f].name.c_str());
  }
  std::printf("\n  (risk lift %.4f, modeled speedup %.1fx)\n\n",
              pipeline.plan().risk_lift, pipeline.plan().speedup_vs_pure);

  // A morning's clinic: classify 20 patients securely.
  static const char* kTherapy[] = {"ACE inhibitor", "CCB/diuretic",
                                   "beta blocker"};
  uint64_t total_bytes = 0;
  double total_ms = 0;
  int agree = 0;
  const int kPatients = 20;
  for (int i = 0; i < kPatients; ++i) {
    const std::vector<int>& row = cohort.row(i * 101);
    SmcRunStats stats = pipeline.Classify(row);
    total_bytes += stats.bytes;
    total_ms += stats.wall_seconds * 1e3;
    agree += stats.predicted_class == pipeline.PlaintextPredict(row);
    if (i < 5) {
      std::printf("  patient %2d -> %s\n", i, kTherapy[stats.predicted_class]);
    }
  }
  std::printf("  ... (%d total)\n\n", kPatients);
  std::printf("Batch stats: %.1f ms and %.1f KiB per patient on average; "
              "%d/%d match the plaintext model\n",
              total_ms / kPatients, total_bytes / 1024.0 / kPatients, agree,
              kPatients);
  std::remove(path);
  return 0;
}
