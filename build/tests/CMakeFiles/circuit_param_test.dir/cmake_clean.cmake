file(REMOVE_RECURSE
  "CMakeFiles/circuit_param_test.dir/circuit_param_test.cc.o"
  "CMakeFiles/circuit_param_test.dir/circuit_param_test.cc.o.d"
  "circuit_param_test"
  "circuit_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
