# Empty compiler generated dependencies file for circuit_param_test.
# This may be replaced when dependencies are built.
