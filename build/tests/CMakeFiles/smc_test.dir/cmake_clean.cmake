file(REMOVE_RECURSE
  "CMakeFiles/smc_test.dir/smc_test.cc.o"
  "CMakeFiles/smc_test.dir/smc_test.cc.o.d"
  "smc_test"
  "smc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
