file(REMOVE_RECURSE
  "CMakeFiles/gmw_test.dir/gmw_test.cc.o"
  "CMakeFiles/gmw_test.dir/gmw_test.cc.o.d"
  "gmw_test"
  "gmw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
