# Empty compiler generated dependencies file for gmw_test.
# This may be replaced when dependencies are built.
