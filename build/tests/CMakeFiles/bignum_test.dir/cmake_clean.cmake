file(REMOVE_RECURSE
  "CMakeFiles/bignum_test.dir/bignum_test.cc.o"
  "CMakeFiles/bignum_test.dir/bignum_test.cc.o.d"
  "bignum_test"
  "bignum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bignum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
