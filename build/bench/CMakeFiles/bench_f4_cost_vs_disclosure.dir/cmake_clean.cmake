file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_cost_vs_disclosure.dir/bench_f4_cost_vs_disclosure.cc.o"
  "CMakeFiles/bench_f4_cost_vs_disclosure.dir/bench_f4_cost_vs_disclosure.cc.o.d"
  "bench_f4_cost_vs_disclosure"
  "bench_f4_cost_vs_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_cost_vs_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
