# Empty dependencies file for bench_f4_cost_vs_disclosure.
# This may be replaced when dependencies are built.
