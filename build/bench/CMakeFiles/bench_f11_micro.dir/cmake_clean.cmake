file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_micro.dir/bench_f11_micro.cc.o"
  "CMakeFiles/bench_f11_micro.dir/bench_f11_micro.cc.o.d"
  "bench_f11_micro"
  "bench_f11_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
