# Empty dependencies file for bench_f11_micro.
# This may be replaced when dependencies are built.
