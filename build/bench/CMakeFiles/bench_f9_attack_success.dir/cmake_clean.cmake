file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_attack_success.dir/bench_f9_attack_success.cc.o"
  "CMakeFiles/bench_f9_attack_success.dir/bench_f9_attack_success.cc.o.d"
  "bench_f9_attack_success"
  "bench_f9_attack_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_attack_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
