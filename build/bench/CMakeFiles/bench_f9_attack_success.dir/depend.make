# Empty dependencies file for bench_f9_attack_success.
# This may be replaced when dependencies are built.
