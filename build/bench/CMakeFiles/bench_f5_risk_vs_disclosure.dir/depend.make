# Empty dependencies file for bench_f5_risk_vs_disclosure.
# This may be replaced when dependencies are built.
