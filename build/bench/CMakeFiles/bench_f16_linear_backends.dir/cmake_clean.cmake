file(REMOVE_RECURSE
  "CMakeFiles/bench_f16_linear_backends.dir/bench_f16_linear_backends.cc.o"
  "CMakeFiles/bench_f16_linear_backends.dir/bench_f16_linear_backends.cc.o.d"
  "bench_f16_linear_backends"
  "bench_f16_linear_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f16_linear_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
