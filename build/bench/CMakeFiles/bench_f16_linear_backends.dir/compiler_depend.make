# Empty compiler generated dependencies file for bench_f16_linear_backends.
# This may be replaced when dependencies are built.
