# Empty dependencies file for bench_t2_accuracy.
# This may be replaced when dependencies are built.
