file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_accuracy.dir/bench_t2_accuracy.cc.o"
  "CMakeFiles/bench_t2_accuracy.dir/bench_t2_accuracy.cc.o.d"
  "bench_t2_accuracy"
  "bench_t2_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
