# Empty dependencies file for bench_f8_selection_cost.
# This may be replaced when dependencies are built.
