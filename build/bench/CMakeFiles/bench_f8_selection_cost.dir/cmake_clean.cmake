file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_selection_cost.dir/bench_f8_selection_cost.cc.o"
  "CMakeFiles/bench_f8_selection_cost.dir/bench_f8_selection_cost.cc.o.d"
  "bench_f8_selection_cost"
  "bench_f8_selection_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_selection_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
