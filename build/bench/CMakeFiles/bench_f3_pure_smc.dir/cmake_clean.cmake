file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_pure_smc.dir/bench_f3_pure_smc.cc.o"
  "CMakeFiles/bench_f3_pure_smc.dir/bench_f3_pure_smc.cc.o.d"
  "bench_f3_pure_smc"
  "bench_f3_pure_smc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_pure_smc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
