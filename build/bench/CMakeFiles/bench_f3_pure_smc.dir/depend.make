# Empty dependencies file for bench_f3_pure_smc.
# This may be replaced when dependencies are built.
