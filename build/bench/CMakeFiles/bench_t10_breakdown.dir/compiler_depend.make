# Empty compiler generated dependencies file for bench_t10_breakdown.
# This may be replaced when dependencies are built.
