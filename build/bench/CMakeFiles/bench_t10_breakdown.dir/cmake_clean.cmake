file(REMOVE_RECURSE
  "CMakeFiles/bench_t10_breakdown.dir/bench_t10_breakdown.cc.o"
  "CMakeFiles/bench_t10_breakdown.dir/bench_t10_breakdown.cc.o.d"
  "bench_t10_breakdown"
  "bench_t10_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t10_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
