# Empty dependencies file for bench_f14_forest.
# This may be replaced when dependencies are built.
