file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_forest.dir/bench_f14_forest.cc.o"
  "CMakeFiles/bench_f14_forest.dir/bench_f14_forest.cc.o.d"
  "bench_f14_forest"
  "bench_f14_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
