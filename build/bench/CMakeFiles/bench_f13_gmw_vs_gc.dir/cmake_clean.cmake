file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_gmw_vs_gc.dir/bench_f13_gmw_vs_gc.cc.o"
  "CMakeFiles/bench_f13_gmw_vs_gc.dir/bench_f13_gmw_vs_gc.cc.o.d"
  "bench_f13_gmw_vs_gc"
  "bench_f13_gmw_vs_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_gmw_vs_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
