# Empty dependencies file for bench_f13_gmw_vs_gc.
# This may be replaced when dependencies are built.
