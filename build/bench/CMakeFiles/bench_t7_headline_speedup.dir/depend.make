# Empty dependencies file for bench_t7_headline_speedup.
# This may be replaced when dependencies are built.
