file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_headline_speedup.dir/bench_t7_headline_speedup.cc.o"
  "CMakeFiles/bench_t7_headline_speedup.dir/bench_t7_headline_speedup.cc.o.d"
  "bench_t7_headline_speedup"
  "bench_t7_headline_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_headline_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
