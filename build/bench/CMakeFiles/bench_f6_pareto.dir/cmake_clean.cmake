file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_pareto.dir/bench_f6_pareto.cc.o"
  "CMakeFiles/bench_f6_pareto.dir/bench_f6_pareto.cc.o.d"
  "bench_f6_pareto"
  "bench_f6_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
