file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_output_disclosure.dir/bench_f15_output_disclosure.cc.o"
  "CMakeFiles/bench_f15_output_disclosure.dir/bench_f15_output_disclosure.cc.o.d"
  "bench_f15_output_disclosure"
  "bench_f15_output_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_output_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
