# Empty compiler generated dependencies file for bench_f15_output_disclosure.
# This may be replaced when dependencies are built.
