file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_ablation.dir/bench_f12_ablation.cc.o"
  "CMakeFiles/bench_f12_ablation.dir/bench_f12_ablation.cc.o.d"
  "bench_f12_ablation"
  "bench_f12_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
