# Empty dependencies file for bench_f12_ablation.
# This may be replaced when dependencies are built.
