file(REMOVE_RECURSE
  "libpafs.a"
)
