
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bignum/bigint.cc" "src/CMakeFiles/pafs.dir/bignum/bigint.cc.o" "gcc" "src/CMakeFiles/pafs.dir/bignum/bigint.cc.o.d"
  "/root/repo/src/bignum/modmath.cc" "src/CMakeFiles/pafs.dir/bignum/modmath.cc.o" "gcc" "src/CMakeFiles/pafs.dir/bignum/modmath.cc.o.d"
  "/root/repo/src/bignum/prime.cc" "src/CMakeFiles/pafs.dir/bignum/prime.cc.o" "gcc" "src/CMakeFiles/pafs.dir/bignum/prime.cc.o.d"
  "/root/repo/src/circuit/builder.cc" "src/CMakeFiles/pafs.dir/circuit/builder.cc.o" "gcc" "src/CMakeFiles/pafs.dir/circuit/builder.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "src/CMakeFiles/pafs.dir/circuit/circuit.cc.o" "gcc" "src/CMakeFiles/pafs.dir/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/optimizer.cc" "src/CMakeFiles/pafs.dir/circuit/optimizer.cc.o" "gcc" "src/CMakeFiles/pafs.dir/circuit/optimizer.cc.o.d"
  "/root/repo/src/circuit/serialize.cc" "src/CMakeFiles/pafs.dir/circuit/serialize.cc.o" "gcc" "src/CMakeFiles/pafs.dir/circuit/serialize.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/pafs.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/pafs.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/pafs.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/pafs.dir/core/selection.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/pafs.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/block.cc" "src/CMakeFiles/pafs.dir/crypto/block.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/block.cc.o.d"
  "/root/repo/src/crypto/commit.cc" "src/CMakeFiles/pafs.dir/crypto/commit.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/commit.cc.o.d"
  "/root/repo/src/crypto/key_io.cc" "src/CMakeFiles/pafs.dir/crypto/key_io.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/key_io.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/CMakeFiles/pafs.dir/crypto/paillier.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/paillier.cc.o.d"
  "/root/repo/src/crypto/prg.cc" "src/CMakeFiles/pafs.dir/crypto/prg.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/prg.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/pafs.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/pafs.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/pafs.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/pafs.dir/data/csv.cc.o.d"
  "/root/repo/src/data/hypertension_gen.cc" "src/CMakeFiles/pafs.dir/data/hypertension_gen.cc.o" "gcc" "src/CMakeFiles/pafs.dir/data/hypertension_gen.cc.o.d"
  "/root/repo/src/data/warfarin_gen.cc" "src/CMakeFiles/pafs.dir/data/warfarin_gen.cc.o" "gcc" "src/CMakeFiles/pafs.dir/data/warfarin_gen.cc.o.d"
  "/root/repo/src/gc/garble.cc" "src/CMakeFiles/pafs.dir/gc/garble.cc.o" "gcc" "src/CMakeFiles/pafs.dir/gc/garble.cc.o.d"
  "/root/repo/src/gc/protocol.cc" "src/CMakeFiles/pafs.dir/gc/protocol.cc.o" "gcc" "src/CMakeFiles/pafs.dir/gc/protocol.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/pafs.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/pafs.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/discretizer.cc" "src/CMakeFiles/pafs.dir/ml/discretizer.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/discretizer.cc.o.d"
  "/root/repo/src/ml/linear_model.cc" "src/CMakeFiles/pafs.dir/ml/linear_model.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/linear_model.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/pafs.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/model_io.cc" "src/CMakeFiles/pafs.dir/ml/model_io.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/model_io.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/pafs.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/pafs.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/pafs.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/pafs.dir/net/channel.cc.o.d"
  "/root/repo/src/net/throttle.cc" "src/CMakeFiles/pafs.dir/net/throttle.cc.o" "gcc" "src/CMakeFiles/pafs.dir/net/throttle.cc.o.d"
  "/root/repo/src/ot/base_ot.cc" "src/CMakeFiles/pafs.dir/ot/base_ot.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ot/base_ot.cc.o.d"
  "/root/repo/src/ot/iknp.cc" "src/CMakeFiles/pafs.dir/ot/iknp.cc.o" "gcc" "src/CMakeFiles/pafs.dir/ot/iknp.cc.o.d"
  "/root/repo/src/privacy/chow_liu.cc" "src/CMakeFiles/pafs.dir/privacy/chow_liu.cc.o" "gcc" "src/CMakeFiles/pafs.dir/privacy/chow_liu.cc.o.d"
  "/root/repo/src/privacy/inference_attack.cc" "src/CMakeFiles/pafs.dir/privacy/inference_attack.cc.o" "gcc" "src/CMakeFiles/pafs.dir/privacy/inference_attack.cc.o.d"
  "/root/repo/src/privacy/risk.cc" "src/CMakeFiles/pafs.dir/privacy/risk.cc.o" "gcc" "src/CMakeFiles/pafs.dir/privacy/risk.cc.o.d"
  "/root/repo/src/sharing/gmw.cc" "src/CMakeFiles/pafs.dir/sharing/gmw.cc.o" "gcc" "src/CMakeFiles/pafs.dir/sharing/gmw.cc.o.d"
  "/root/repo/src/smc/common.cc" "src/CMakeFiles/pafs.dir/smc/common.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/common.cc.o.d"
  "/root/repo/src/smc/cost_model.cc" "src/CMakeFiles/pafs.dir/smc/cost_model.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/cost_model.cc.o.d"
  "/root/repo/src/smc/secure_forest.cc" "src/CMakeFiles/pafs.dir/smc/secure_forest.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/secure_forest.cc.o.d"
  "/root/repo/src/smc/secure_linear.cc" "src/CMakeFiles/pafs.dir/smc/secure_linear.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/secure_linear.cc.o.d"
  "/root/repo/src/smc/secure_linear_aby.cc" "src/CMakeFiles/pafs.dir/smc/secure_linear_aby.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/secure_linear_aby.cc.o.d"
  "/root/repo/src/smc/secure_nb.cc" "src/CMakeFiles/pafs.dir/smc/secure_nb.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/secure_nb.cc.o.d"
  "/root/repo/src/smc/secure_tree.cc" "src/CMakeFiles/pafs.dir/smc/secure_tree.cc.o" "gcc" "src/CMakeFiles/pafs.dir/smc/secure_tree.cc.o.d"
  "/root/repo/src/util/bitvec.cc" "src/CMakeFiles/pafs.dir/util/bitvec.cc.o" "gcc" "src/CMakeFiles/pafs.dir/util/bitvec.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pafs.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pafs.dir/util/random.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
