# Empty compiler generated dependencies file for pafs.
# This may be replaced when dependencies are built.
