file(REMOVE_RECURSE
  "CMakeFiles/pafs_cli.dir/pafs_cli.cpp.o"
  "CMakeFiles/pafs_cli.dir/pafs_cli.cpp.o.d"
  "pafs_cli"
  "pafs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pafs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
