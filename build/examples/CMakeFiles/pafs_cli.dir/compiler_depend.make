# Empty compiler generated dependencies file for pafs_cli.
# This may be replaced when dependencies are built.
