# Empty dependencies file for warfarin_dosing.
# This may be replaced when dependencies are built.
