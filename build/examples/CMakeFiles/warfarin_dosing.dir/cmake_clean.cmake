file(REMOVE_RECURSE
  "CMakeFiles/warfarin_dosing.dir/warfarin_dosing.cpp.o"
  "CMakeFiles/warfarin_dosing.dir/warfarin_dosing.cpp.o.d"
  "warfarin_dosing"
  "warfarin_dosing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warfarin_dosing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
