# Empty dependencies file for secure_survey.
# This may be replaced when dependencies are built.
